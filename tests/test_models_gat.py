"""Tests for the GAT reference layer and the reordered attention computation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, power_law_graph
from repro.models import (
    GATLayer,
    gat_attention_scores_naive,
    gat_attention_scores_reordered,
    segment_sum,
)


@pytest.fixture()
def small_graph():
    edges = [(0, 1), (1, 2), (2, 0), (2, 3)]
    return CSRGraph.from_edge_list(edges, num_vertices=4, symmetric=True)


class TestAttentionReordering:
    """GNNIE's linear-complexity reordering must be numerically identical to
    the naive per-edge concatenated dot product (Section V-A)."""

    def test_small_example(self, small_graph):
        rng = np.random.default_rng(0)
        weighted = rng.normal(size=(4, 6))
        left = rng.normal(size=6)
        right = rng.normal(size=6)
        edges = small_graph.edge_array()
        np.testing.assert_allclose(
            gat_attention_scores_reordered(weighted, left, right, edges),
            gat_attention_scores_naive(weighted, left, right, edges),
            atol=1e-12,
        )

    @settings(max_examples=25, deadline=None)
    @given(
        num_vertices=st.integers(min_value=2, max_value=20),
        feature=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_equivalence_property(self, num_vertices, feature, seed):
        rng = np.random.default_rng(seed)
        graph = power_law_graph(num_vertices, max(num_vertices, 3), seed=seed)
        weighted = rng.normal(size=(num_vertices, feature))
        left = rng.normal(size=feature)
        right = rng.normal(size=feature)
        edges = graph.edge_array()
        if edges.size == 0:
            return
        np.testing.assert_allclose(
            gat_attention_scores_reordered(weighted, left, right, edges),
            gat_attention_scores_naive(weighted, left, right, edges),
            atol=1e-9,
        )

    def test_leaky_relu_applied(self):
        weighted = np.array([[1.0], [-1.0]])
        left = np.array([1.0])
        right = np.array([1.0])
        edges = np.array([[1, 1]])  # score = -2 before LeakyReLU
        scores = gat_attention_scores_reordered(weighted, left, right, edges)
        np.testing.assert_allclose(scores, [-0.4])


class TestGATLayer:
    def test_output_shape(self, small_graph):
        layer = GATLayer(6, 8, seed=1)
        out = layer.forward(small_graph, np.random.default_rng(1).normal(size=(4, 6)))
        assert out.shape == (4, 8)

    def test_attention_coefficients_sum_to_one(self, small_graph):
        """Uniform features must reproduce the mean of the neighborhood —
        i.e. the softmax-normalized α_ij sum to one over {i} ∪ N(i)."""
        layer = GATLayer(5, 3, activation="none", seed=2)
        features = np.ones((4, 5))
        out = layer.forward(small_graph, features)
        expected = np.tile(features[0] @ layer.weight, (4, 1))
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_matches_manual_computation(self, small_graph):
        rng = np.random.default_rng(3)
        features = rng.normal(size=(4, 5))
        layer = GATLayer(5, 3, activation="none", seed=4)
        weighted = features @ layer.weight
        edges = np.concatenate(
            [small_graph.edge_array(), np.stack([np.arange(4)] * 2, axis=1)], axis=0
        )
        scores = gat_attention_scores_naive(
            weighted, layer.attention_left, layer.attention_right, edges
        )
        # Manual per-destination softmax and weighted sum.
        expected = np.zeros((4, 3))
        for vertex in range(4):
            mask = edges[:, 1] == vertex
            exp_scores = np.exp(scores[mask] - scores[mask].max())
            alphas = exp_scores / exp_scores.sum()
            expected[vertex] = (alphas[:, None] * weighted[edges[mask, 0]]).sum(axis=0)
        np.testing.assert_allclose(layer.forward(small_graph, features), expected, atol=1e-10)

    def test_high_attention_neighbor_dominates(self):
        """A neighbor whose features align with the attention vector should
        dominate the weighted aggregation."""
        adjacency = CSRGraph.from_edge_list([(0, 1), (0, 2)], num_vertices=3, symmetric=True)
        layer = GATLayer(2, 2, activation="none", seed=0)
        layer.weight = np.eye(2)
        layer.attention_left = np.zeros(2)
        layer.attention_right = np.array([10.0, 0.0])
        features = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        out = layer.forward(adjacency, features)
        # For vertex 0 the neighbor 1 (feature [1,0]) gets a huge score.
        assert out[0, 0] > 0.9
        assert out[0, 1] < 0.1

    def test_workload_includes_attention(self, small_graph):
        layer = GATLayer(6, 8)
        workload = layer.workload(small_graph, np.ones((4, 6)))
        assert workload.attention_ops > 0

    def test_wrong_width_rejected(self, small_graph):
        with pytest.raises(ValueError):
            GATLayer(6, 8).forward(small_graph, np.ones((4, 3)))
