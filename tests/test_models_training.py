"""Tests for the Fig. 1 accuracy-study training utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import build_dataset
from repro.models import accuracy_study, micro_f1
from repro.models.training import encode_features, train_linear_probe


class TestMicroF1:
    def test_perfect_predictions(self):
        labels = np.array([[1, 0], [0, 1]])
        assert micro_f1(labels, labels) == 1.0

    def test_all_wrong(self):
        predictions = np.array([[1, 0], [0, 1]])
        labels = np.array([[0, 1], [1, 0]])
        assert micro_f1(predictions, labels) == 0.0

    def test_partial(self):
        predictions = np.array([[1, 1], [0, 0]])
        labels = np.array([[1, 0], [0, 0]])
        # tp=1, fp=1, fn=0 -> f1 = 2/(2+1) = 2/3.
        assert micro_f1(predictions, labels) == pytest.approx(2 / 3)

    def test_empty_labels(self):
        assert micro_f1(np.zeros((3, 2)), np.zeros((3, 2))) == 0.0


class TestLinearProbe:
    def test_learns_separable_problem(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(200, 10))
        true_weights = rng.normal(size=(10, 3))
        labels = (features @ true_weights > 0).astype(float)
        weights = train_linear_probe(features, labels, epochs=300, seed=0)
        design = np.concatenate(
            [
                (features - features.mean(axis=0)) / (features.std(axis=0) + 1e-8),
                np.ones((200, 1)),
            ],
            axis=1,
        )
        predictions = design @ weights > 0
        assert micro_f1(predictions, labels) > 0.85

    def test_rejects_single_label_vector(self):
        with pytest.raises(ValueError):
            train_linear_probe(np.ones((10, 4)), np.ones(10))


class TestAccuracyStudy:
    @pytest.fixture(scope="class")
    def ppi_like(self):
        return build_dataset("ppi", scale=0.01, seed=2)

    def test_returns_all_five_variants(self, ppi_like):
        results = accuracy_study(ppi_like, epochs=60, hidden=24, seed=0)
        names = {result.model for result in results}
        assert names == {
            "GCN",
            "GraphSAGE-mean",
            "GraphSAGE-LSTM",
            "GraphSAGE-pool",
            "GAT",
        }
        assert all(0.0 <= result.micro_f1 <= 1.0 for result in results)

    def test_relative_compute_ordering(self, ppi_like):
        results = {r.model: r for r in accuracy_study(ppi_like, epochs=40, hidden=16, seed=0)}
        assert results["GAT"].relative_compute > results["GCN"].relative_compute

    def test_encode_features_shapes(self, ppi_like):
        encoded = encode_features(ppi_like, "gcn", hidden=16, seed=0)
        assert encoded.shape == (ppi_like.num_vertices, 32)

    def test_requires_multilabel(self):
        single = build_dataset("cora", scale=0.05, seed=0)
        with pytest.raises(ValueError):
            accuracy_study(single)

    def test_unknown_variant(self, ppi_like):
        with pytest.raises(ValueError):
            encode_features(ppi_like, "resnet")
