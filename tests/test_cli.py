"""Tests for the command-line interface (`python -m repro`)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_cache_defaults(self):
        args = build_parser().parse_args(["cache"])
        assert args.dataset == "cora"
        assert args.mechanism == "victim,miss,stream"
        assert args.policy == "vertex_order"

    def test_cache_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "--policy", "belady"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.dataset == "cora"
        assert args.model == "gcn"
        assert args.design is None

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--dataset", "imagenet"])

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--model", "transformer"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "Cora" in output and "Reddit" in output

    def test_simulate_command_table(self, capsys):
        exit_code = main(
            ["simulate", "--dataset", "cora", "--model", "gcn", "--scale", "0.1", "--seed", "3"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Per-phase breakdown" in output
        assert "weighting" in output and "aggregation" in output

    def test_simulate_command_json(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--dataset",
                    "cora",
                    "--model",
                    "gat",
                    "--scale",
                    "0.1",
                    "--json",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["model"] == "GAT"
        assert report["total_cycles"] > 0

    def test_simulate_with_design_and_roofline(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--dataset",
                    "cora",
                    "--model",
                    "gcn",
                    "--scale",
                    "0.1",
                    "--design",
                    "A",
                    "--roofline",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Roofline classification" in output
        assert "compute-bound fraction" in output

    def test_plan_command_table(self, capsys):
        assert main(["plan", "--dataset", "cora", "--model", "gat", "--scale", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "Inference plan: GAT" in output
        assert "WeightingOp" in output and "AttentionOp" in output and "AggregationOp" in output
        assert "preprocess(degree_binning)" in output

    def test_plan_command_json(self, capsys):
        assert (
            main(["plan", "--dataset", "cora", "--model", "diffpool", "--scale", "0.1", "--json"])
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["family"] == "diffpool"
        assert len(document["layers"]) == 3
        assert document["layers"][2]["ops"][0]["op"] == "DenseMatmulOp"

    def test_plan_command_every_family(self, capsys):
        from repro.models import MODEL_FAMILIES

        for family in MODEL_FAMILIES:
            assert main(["plan", "--dataset", "cora", "--model", family, "--scale", "0.1"]) == 0
        assert "Inference plan" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        assert main(["compare", "--dataset", "cora", "--model", "gcn", "--scale", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "PyG-CPU" in output and "AWB-GCN" in output and "EnGN" in output

    def test_compare_command_json(self, capsys):
        assert (
            main(["compare", "--dataset", "cora", "--model", "gcn", "--scale", "0.1", "--json"])
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["model"] == "GCN"
        platforms = [row["platform"] for row in document["rows"]]
        assert platforms[0] == "GNNIE" and "EnGN" in platforms
        assert all(row["supported"] for row in document["rows"])
        assert all(row["speedup"] >= 1.0 for row in document["rows"])

    def test_compare_command_json_unsupported_platforms_stay_typed(self, capsys):
        assert (
            main(["compare", "--dataset", "cora", "--model", "gat", "--scale", "0.1", "--json"])
            == 0
        )
        rows = json.loads(capsys.readouterr().out)["rows"]
        unsupported = [row for row in rows if not row["supported"]]
        assert {row["platform"] for row in unsupported} == {"HyGCN", "AWB-GCN", "EnGN"}
        # Numeric fields are null, never placeholder strings, so consumers
        # can aggregate without type checks.
        assert all(row["latency_ms"] is None and row["speedup"] is None for row in unsupported)
        assert all(
            isinstance(row["speedup"], float) for row in rows if row["supported"]
        )

    def test_compare_marks_unsupported_platforms(self, capsys):
        assert main(["compare", "--dataset", "cora", "--model", "gat", "--scale", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "unsupported" in output

    def test_designs_command(self, capsys):
        assert main(["designs", "--dataset", "cora", "--model", "gcn", "--scale", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "Design A" in output and "Design E" in output

    def test_cache_command_per_mechanism_table(self, capsys):
        assert main(["cache", "--dataset", "cora", "--mechanism", "victim,stream"]) == 0
        output = capsys.readouterr().out
        assert "Miss-path hierarchy" in output
        assert "victim" in output and "stream" in output and "victim+stream" in output
        assert "dram_random_avoided" in output and "hit_rate_pct" in output

    def test_cache_command_all_policies(self, capsys):
        assert (
            main(
                [
                    "cache",
                    "--dataset",
                    "cora",
                    "--scale",
                    "0.2",
                    "--policy",
                    "all",
                    "--mechanism",
                    "stream",
                    "--stream-buffers",
                    "2",
                    "--stream-depth",
                    "32",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "degree_aware" in output and "vertex_order" in output
        assert "mru" in output and "static_partition" in output

    def test_cache_command_rejects_unknown_mechanism(self, capsys):
        assert main(["cache", "--dataset", "cora", "--mechanism", "belady"]) == 2
        assert "unknown mechanisms" in capsys.readouterr().err


class TestProfileCommand:
    def test_parser_accepts_family_and_model_alias(self):
        assert build_parser().parse_args(["profile", "--family", "gat"]).family == "gat"
        assert build_parser().parse_args(["profile", "--model", "gat"]).family == "gat"

    def test_profile_table_output(self, capsys):
        assert main(["profile", "--dataset", "cora", "--family", "gcn", "--scale", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "Span attribution" in output
        assert "inference/layer0/op:weighting" in output
        assert "Metrics" in output and "executor.cache_sim.runs" in output

    def test_profile_json_report(self, capsys):
        assert main(
            ["profile", "--dataset", "cora", "--family", "gcn", "--scale", "0.2", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        op_cycles = sum(
            row["cycles"] for row in report["spans"] if "/op:" in row["span"] or "preprocess" in row["span"]
        )
        assert op_cycles == report["summary"]["cycles"]
        assert report["trace"] is None
        assert any(row["name"] == "executor.cache_sim.runs" for row in report["metrics"])

    def test_profile_trace_and_metrics_files(self, tmp_path, capsys):
        from repro.obs import assert_valid_chrome_trace

        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.csv"
        assert main(
            [
                "profile",
                "--dataset", "cora",
                "--family", "gcn",
                "--scale", "0.2",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        ) == 0
        document = json.loads(trace_path.read_text())
        assert_valid_chrome_trace(document)
        # The acceptance invariant: per-phase-op modeled cycles in the trace
        # sum to the inference's total_cycles (stored in the metadata).
        op_cycles = sum(
            event["args"].get("cycles", 0)
            for event in document["traceEvents"]
            if event["ph"] == "B" and event.get("cat") == "op"
        )
        assert op_cycles == document["metadata"]["total_cycles"]
        # Layer tracks: thread metadata names one row per layer.
        thread_names = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert "layer 0" in thread_names and "inference" in thread_names
        assert metrics_path.read_text().startswith("name,kind,labels,value")
        assert str(trace_path) in capsys.readouterr().out

    def test_profile_design_override(self, capsys):
        assert main(
            ["profile", "--dataset", "cora", "--family", "gcn", "--scale", "0.2",
             "--design", "E", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["config"].startswith("Design E")
