"""Tests for sparse feature generation and block nonzero accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import FeatureMatrix, block_nonzero_counts, generate_sparse_features


class TestGenerateSparseFeatures:
    def test_target_sparsity_respected(self):
        matrix = generate_sparse_features(500, 200, 0.95, seed=0)
        sparsity = 1.0 - np.count_nonzero(matrix) / matrix.size
        assert sparsity == pytest.approx(0.95, abs=0.02)

    def test_every_row_has_a_nonzero(self):
        matrix = generate_sparse_features(300, 64, 0.99, seed=1)
        assert np.all(np.count_nonzero(matrix, axis=1) >= 1)

    def test_row_counts_vary(self):
        matrix = generate_sparse_features(500, 400, 0.95, seed=2)
        counts = np.count_nonzero(matrix, axis=1)
        assert counts.std() > 0.5  # rabbit/turtle spread exists

    def test_column_skew_creates_block_imbalance(self):
        skewed = generate_sparse_features(400, 320, 0.95, seed=3, column_skew=1.2)
        uniform = generate_sparse_features(400, 320, 0.95, seed=3, column_skew=0.0)
        block_std_skewed = block_nonzero_counts(skewed, 20).sum(axis=0).std()
        block_std_uniform = block_nonzero_counts(uniform, 20).sum(axis=0).std()
        assert block_std_skewed > block_std_uniform

    def test_deterministic(self):
        first = generate_sparse_features(100, 50, 0.9, seed=4)
        second = generate_sparse_features(100, 50, 0.9, seed=4)
        np.testing.assert_array_equal(first, second)

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            generate_sparse_features(10, 10, 1.0)
        with pytest.raises(ValueError):
            generate_sparse_features(10, 10, -0.1)


class TestBlockNonzeroCounts:
    def test_manual_example(self):
        matrix = np.array(
            [
                [1.0, 0.0, 2.0, 0.0, 0.0, 3.0],
                [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            ]
        )
        counts = block_nonzero_counts(matrix, block_size=2)
        np.testing.assert_array_equal(counts, [[1, 1, 1], [0, 0, 0]])

    def test_uneven_last_block(self):
        matrix = np.ones((3, 5))
        counts = block_nonzero_counts(matrix, block_size=2)
        np.testing.assert_array_equal(counts, [[2, 2, 1]] * 3)

    def test_totals_match_nonzeros(self):
        rng = np.random.default_rng(5)
        matrix = np.where(rng.random((40, 97)) < 0.2, 1.0, 0.0)
        counts = block_nonzero_counts(matrix, block_size=8)
        assert counts.sum() == np.count_nonzero(matrix)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            block_nonzero_counts(np.ones(5), 2)
        with pytest.raises(ValueError):
            block_nonzero_counts(np.ones((2, 4)), 0)


class TestFeatureMatrix:
    def test_basic_properties(self):
        matrix = FeatureMatrix(np.array([[0.0, 1.0], [2.0, 0.0], [0.0, 0.0]]))
        assert matrix.num_vertices == 3
        assert matrix.feature_length == 2
        assert matrix.sparsity() == pytest.approx(4 / 6)
        np.testing.assert_array_equal(matrix.row_nonzeros(), [1, 1, 0])

    def test_compressed_smaller_than_dense_for_sparse(self):
        values = generate_sparse_features(100, 256, 0.97, seed=6)
        matrix = FeatureMatrix(values)
        assert matrix.compressed_bits() < matrix.dense_bits()

    def test_block_nonzeros_delegation(self):
        values = np.eye(4)
        matrix = FeatureMatrix(values)
        np.testing.assert_array_equal(
            matrix.block_nonzeros(2), block_nonzero_counts(values, 2)
        )

    def test_rejects_one_dimensional(self):
        with pytest.raises(ValueError):
            FeatureMatrix(np.ones(5))


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=40),
    cols=st.integers(min_value=1, max_value=120),
    block=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=100),
)
def test_block_counts_property(rows, cols, block, seed):
    rng = np.random.default_rng(seed)
    matrix = np.where(rng.random((rows, cols)) < 0.3, 1.0, 0.0)
    counts = block_nonzero_counts(matrix, block)
    assert counts.shape == (rows, -(-cols // block))
    assert counts.sum() == np.count_nonzero(matrix)
    assert counts.max(initial=0) <= block
