"""Property-based invariants of the plan IR and the GNNIE cost model.

Across randomized :class:`~repro.models.zoo.ModelConfig`\\ s and synthetic
graphs, the lower-then-execute pipeline must satisfy structural invariants
no matter which family, layer count or graph shape hypothesis draws:

* cycles, latency and energy are positive and finite,
* per-phase cycles (plus the global preprocessing charge) sum exactly to
  the reported total,
* energy is monotone non-decreasing in edge count for the families that
  aggregate over the full adjacency — removing edges can never make
  inference cost more energy (GraphSAGE is excluded by design: neighbor
  sampling re-draws when the adjacency changes, so a subgraph can sample a
  marginally more expensive subset),
* lowering is a pure function: the same configuration and shape always
  produce an identical plan.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_graph
from repro.graph.graph import Graph
from repro.models.zoo import MODEL_FAMILIES, ModelConfig
from repro.plan.lowering import lower_model
from repro.sim import GNNIESimulator
from repro.sparse.feature_matrix import generate_sparse_features


#: Families whose aggregation reads the full adjacency; GraphSAGE's sampled
#: adjacency is a random function of the graph structure, so edge-count
#: monotonicity does not hold for it (dropping an edge changes which
#: neighbors the sampler draws everywhere else).
FULL_ADJACENCY_FAMILIES = tuple(f for f in MODEL_FAMILIES if f != "graphsage")


@st.composite
def model_configs(draw, families=MODEL_FAMILIES) -> ModelConfig:
    """Randomized Table III-like configurations across the given families."""
    family = draw(st.sampled_from(families))
    return ModelConfig(
        family=family,
        hidden_features=draw(st.integers(min_value=4, max_value=48)),
        num_layers=draw(st.integers(min_value=1, max_value=3)),
        aggregator=draw(st.sampled_from(("sum", "max"))),
        sample_size=draw(st.one_of(st.none(), st.integers(min_value=2, max_value=16))),
        mlp_hidden=draw(st.one_of(st.none(), st.integers(min_value=4, max_value=32))),
    )


@st.composite
def graph_cases(draw) -> Graph:
    """Small random power-law graphs with sparse features."""
    num_vertices = draw(st.integers(min_value=16, max_value=80))
    num_edges = draw(
        st.integers(min_value=num_vertices, max_value=4 * num_vertices)
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    adjacency = power_law_graph(num_vertices, num_edges, exponent=2.3, seed=seed)
    features = generate_sparse_features(
        num_vertices,
        draw(st.integers(min_value=8, max_value=48)),
        draw(st.floats(min_value=0.5, max_value=0.95)),
        seed=seed + 3,
    )
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=np.zeros(num_vertices, dtype=np.int64),
        name="prop",
        num_label_classes=draw(st.integers(min_value=2, max_value=8)),
    )


@settings(max_examples=20, deadline=None)
@given(cfg=model_configs(), graph=graph_cases())
def test_cycles_and_energy_positive_and_finite(cfg, graph):
    result = GNNIESimulator().run(graph, cfg.family, model_cfg=cfg)
    assert result.total_cycles > 0
    assert math.isfinite(result.latency_seconds) and result.latency_seconds > 0
    assert math.isfinite(result.energy_joules) and result.energy_joules > 0
    assert result.total_mac_operations > 0


@settings(max_examples=20, deadline=None)
@given(cfg=model_configs(), graph=graph_cases())
def test_phase_cycles_sum_to_total(cfg, graph):
    result = GNNIESimulator().run(graph, cfg.family, model_cfg=cfg)
    phase_sum = sum(
        phase.total_cycles for layer in result.layers for phase in layer.phases()
    )
    assert phase_sum + result.global_preprocessing_cycles == result.total_cycles
    # And within every phase the cycle components are non-negative.
    for layer in result.layers:
        for phase in layer.phases():
            assert phase.compute_cycles >= 0
            assert phase.memory_stall_cycles >= 0
            assert phase.sfu_cycles >= 0
            assert phase.preprocessing_cycles >= 0


@settings(max_examples=15, deadline=None)
@given(
    cfg=model_configs(families=FULL_ADJACENCY_FAMILIES),
    num_vertices=st.integers(min_value=16, max_value=64),
    degree=st.integers(min_value=2, max_value=6),
    drop_fraction=st.floats(min_value=0.05, max_value=0.8),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_energy_monotone_in_edge_count(cfg, num_vertices, degree, drop_fraction, seed):
    """Removing edges (same vertices/features) never increases energy."""
    adjacency = power_law_graph(
        num_vertices, num_vertices * degree // 2, exponent=2.3, seed=seed
    )
    undirected = adjacency.edge_array()
    undirected = undirected[undirected[:, 0] < undirected[:, 1]]
    rng = np.random.default_rng(seed + 1)
    kept = rng.choice(
        len(undirected),
        size=max(1, int(len(undirected) * (1 - drop_fraction))),
        replace=False,
    )
    subset = undirected[np.sort(kept)]
    features = generate_sparse_features(num_vertices, 24, 0.85, seed=seed + 3)
    labels = np.zeros(num_vertices, dtype=np.int64)

    def build(edges) -> Graph:
        return Graph(
            adjacency=CSRGraph.from_edge_list(
                edges.tolist(), num_vertices=num_vertices, symmetric=True
            ),
            features=features,
            labels=labels,
            name="prop",
            num_label_classes=4,
        )

    full = GNNIESimulator().run(build(undirected), cfg.family, model_cfg=cfg)
    sub = GNNIESimulator().run(build(subset), cfg.family, model_cfg=cfg)
    assert sub.energy_joules <= full.energy_joules * (1 + 1e-12)


@settings(max_examples=30, deadline=None)
@given(
    cfg=model_configs(),
    in_features=st.integers(min_value=4, max_value=256),
    out_features=st.integers(min_value=2, max_value=64),
)
def test_lowering_is_deterministic(cfg, in_features, out_features):
    first = lower_model(cfg, in_features, out_features)
    second = lower_model(cfg, in_features, out_features)
    # Frozen dataclasses all the way down: structural equality is exact.
    assert first == second
    assert first.to_json() == second.to_json()
    # And the plan's layer arithmetic is self-consistent.
    assert first.in_features == in_features
    assert first.out_features == out_features
    assert all(layer.ops for layer in first.layers)
