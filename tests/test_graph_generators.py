"""Tests for the synthetic graph topology generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    community_graph,
    erdos_renyi_graph,
    power_law_degree_sequence,
    power_law_graph,
)


class TestPowerLawDegreeSequence:
    def test_mean_close_to_target(self):
        degrees = power_law_degree_sequence(5000, 10.0, 2.3, seed=1)
        assert degrees.mean() == pytest.approx(10.0, rel=0.25)

    def test_respects_bounds(self):
        degrees = power_law_degree_sequence(1000, 8.0, 2.1, min_degree=2, max_degree=50, seed=2)
        assert degrees.min() >= 2
        assert degrees.max() <= 50

    def test_heavy_tail_present(self):
        degrees = power_law_degree_sequence(5000, 6.0, 2.0, seed=3)
        assert degrees.max() > 5 * degrees.mean()

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            power_law_degree_sequence(0, 5.0, 2.0)
        with pytest.raises(ValueError):
            power_law_degree_sequence(10, -1.0, 2.0)
        with pytest.raises(ValueError):
            power_law_degree_sequence(10, 5.0, 0.9)

    @settings(max_examples=20, deadline=None)
    @given(
        num=st.integers(min_value=10, max_value=2000),
        avg=st.floats(min_value=1.0, max_value=30.0),
        exponent=st.floats(min_value=1.5, max_value=3.5),
    )
    def test_always_positive_integers(self, num, avg, exponent):
        degrees = power_law_degree_sequence(num, avg, exponent, seed=0)
        assert degrees.shape == (num,)
        assert np.issubdtype(degrees.dtype, np.integer)
        assert degrees.min() >= 1


class TestPowerLawGraph:
    def test_edge_count_near_target(self):
        graph = power_law_graph(2000, 10000, seed=4)
        undirected = graph.num_edges / 2
        assert undirected == pytest.approx(10000, rel=0.35)

    def test_no_isolated_vertices(self):
        graph = power_law_graph(500, 800, seed=5)
        assert graph.degrees().min() >= 1

    def test_no_self_loops(self):
        graph = power_law_graph(300, 900, seed=6)
        edges = graph.edge_array()
        assert np.all(edges[:, 0] != edges[:, 1])

    def test_symmetric(self):
        graph = power_law_graph(200, 600, seed=7)
        dense = graph.to_dense()
        np.testing.assert_array_equal(dense, dense.T)

    def test_deterministic_given_seed(self):
        first = power_law_graph(300, 900, seed=8)
        second = power_law_graph(300, 900, seed=8)
        np.testing.assert_array_equal(first.indices, second.indices)

    def test_different_seeds_differ(self):
        first = power_law_graph(300, 900, seed=8)
        second = power_law_graph(300, 900, seed=9)
        assert not np.array_equal(first.indices, second.indices)

    def test_max_degree_cap_respected(self):
        graph = power_law_graph(2000, 12000, max_degree=40, seed=10)
        # The Chung-Lu sampler targets the cap statistically; allow slack for
        # Poisson fluctuation around the capped expectation.
        assert graph.max_degree() <= 80

    def test_power_law_skew(self):
        graph = power_law_graph(3000, 15000, exponent=2.0, seed=11)
        degrees = np.sort(graph.degrees())[::-1]
        top_fraction = degrees[: len(degrees) // 10].sum() / degrees.sum()
        # The top 10% of vertices should hold well over their proportional
        # share of edges (power-law behaviour the cache policy relies on).
        assert top_fraction > 0.25

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            power_law_graph(1, 10)
        with pytest.raises(ValueError):
            power_law_graph(10, 0)


class TestCommunityGraph:
    def test_basic_structure(self):
        graph = community_graph(400, 4, intra_average_degree=10.0, seed=12)
        assert graph.num_vertices == 400
        assert graph.degrees().min() >= 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            community_graph(100, 0)
        with pytest.raises(ValueError):
            community_graph(100, 4, inter_edge_fraction=1.5)

    def test_deterministic(self):
        first = community_graph(300, 3, seed=13)
        second = community_graph(300, 3, seed=13)
        np.testing.assert_array_equal(first.indices, second.indices)


class TestErdosRenyi:
    def test_edge_count(self):
        graph = erdos_renyi_graph(500, 3000, seed=14)
        assert graph.num_edges / 2 == pytest.approx(3000, rel=0.3)

    def test_degrees_not_power_law(self):
        graph = erdos_renyi_graph(2000, 12000, seed=15)
        degrees = graph.degrees()
        # Uniform random graphs have light-tailed degrees: the maximum stays
        # within a small factor of the mean, unlike the power-law generators.
        assert degrees.max() < 5 * degrees.mean()
