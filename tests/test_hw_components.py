"""Tests for the CPE, MPE, SFU and PE-array component models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw import (
    AcceleratorConfig,
    ComputePE,
    CPEConfig,
    MergePE,
    MPEConfig,
    PEArray,
    SFUConfig,
    SpecialFunctionUnit,
)


class TestComputePE:
    def test_weighting_cycles_ceiling(self):
        cpe = ComputePE(CPEConfig(num_macs=4))
        assert cpe.weighting_cycles(8) == 2
        assert cpe.weighting_cycles(9) == 3
        assert cpe.weighting_cycles(0) == 0

    def test_zero_skipping_counts(self):
        cpe = ComputePE(CPEConfig(num_macs=4))
        cpe.weighting_cycles(3, zero_operands=13)
        assert cpe.skipped_zero_operations == 13
        assert cpe.mac_operations == 3

    def test_aggregation_cycles(self):
        cpe = ComputePE(CPEConfig(num_macs=6))
        assert cpe.aggregation_cycles(12) == 2
        assert cpe.aggregation_cycles(13) == 3

    def test_busy_cycles_accumulate_and_reset(self):
        cpe = ComputePE(CPEConfig(num_macs=4))
        cpe.weighting_cycles(4)
        cpe.aggregation_cycles(4)
        assert cpe.busy_cycles == 2
        cpe.reset()
        assert cpe.busy_cycles == 0
        assert cpe.mac_operations == 0

    def test_utilization(self):
        cpe = ComputePE(CPEConfig(num_macs=4))
        cpe.weighting_cycles(8)
        assert cpe.utilization(4) == pytest.approx(0.5)
        assert cpe.utilization(0) == 0.0

    def test_negative_operands_rejected(self):
        cpe = ComputePE(CPEConfig(num_macs=4))
        with pytest.raises(ValueError):
            cpe.weighting_cycles(-1)
        with pytest.raises(ValueError):
            cpe.aggregation_cycles(-1)


class TestMergePE:
    def test_completion_after_all_blocks(self):
        mpe = MergePE(MPEConfig(psum_slots=4))
        mpe.accumulate(vertex_id=7, partial_blocks=3, total_blocks=4)
        assert mpe.stats.completed_vertices == 0
        mpe.accumulate(vertex_id=7, partial_blocks=1, total_blocks=4)
        assert mpe.stats.completed_vertices == 1
        assert mpe.live_vertices == 0

    def test_psum_slot_pressure_causes_stalls(self):
        mpe = MergePE(MPEConfig(psum_slots=2))
        for vertex in range(5):
            mpe.accumulate(vertex_id=vertex, partial_blocks=1, total_blocks=16)
        assert mpe.stats.stall_cycles > 0
        assert mpe.stats.peak_live_vertices <= 2

    def test_no_stalls_with_enough_slots(self):
        mpe = MergePE(MPEConfig(psum_slots=64))
        for vertex in range(32):
            mpe.accumulate(vertex_id=vertex, partial_blocks=1, total_blocks=2)
        assert mpe.stats.stall_cycles == 0

    def test_invalid_blocks(self):
        mpe = MergePE(MPEConfig())
        with pytest.raises(ValueError):
            mpe.accumulate(0, -1, 4)
        with pytest.raises(ValueError):
            mpe.accumulate(0, 1, 0)

    def test_reset(self):
        mpe = MergePE(MPEConfig())
        mpe.accumulate(0, 1, 4)
        mpe.reset()
        assert mpe.live_vertices == 0
        assert mpe.stats.accumulations == 0


class TestSpecialFunctionUnit:
    def test_exp_lut_accuracy(self):
        sfu = SpecialFunctionUnit()
        assert sfu.exp_max_relative_error() < 0.01

    def test_exp_matches_numpy_within_tolerance(self):
        sfu = SpecialFunctionUnit()
        values = np.linspace(-10, 5, 100)
        np.testing.assert_allclose(sfu.exp(values), np.exp(values), rtol=0.01)

    def test_exp_clamps_out_of_range(self):
        sfu = SpecialFunctionUnit()
        assert np.isfinite(sfu.exp(np.array([1e6])))[0]

    def test_leaky_relu_and_relu(self):
        sfu = SpecialFunctionUnit()
        np.testing.assert_allclose(sfu.leaky_relu(np.array([-1.0, 2.0])), [-0.2, 2.0])
        np.testing.assert_allclose(sfu.relu(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_divide(self):
        sfu = SpecialFunctionUnit()
        np.testing.assert_allclose(sfu.divide(np.array([6.0]), np.array([2.0])), [3.0])

    def test_invocation_counters(self):
        sfu = SpecialFunctionUnit()
        sfu.exp(np.zeros(5))
        sfu.relu(np.zeros(3))
        assert sfu.invocation_counts["exp"] == 5
        assert sfu.invocation_counts["relu"] == 3

    def test_cycles_for(self):
        sfu = SpecialFunctionUnit(SFUConfig(exp_latency_cycles=2, divide_latency_cycles=4))
        assert sfu.cycles_for("exp", 10) == 20
        assert sfu.cycles_for("divide", 3) == 12
        with pytest.raises(ValueError):
            sfu.cycles_for("tanh", 1)
        with pytest.raises(ValueError):
            sfu.cycles_for("exp", -1)


class TestPEArray:
    def test_structure_matches_config(self):
        array = PEArray(AcceleratorConfig())
        assert array.num_rows == 16 and array.num_cols == 16
        assert array.total_macs() == 1216
        assert len(array.mpes) == 16
        assert array.row_mac_counts().tolist() == [4] * 8 + [5] * 4 + [6] * 4

    def test_row_weighting_cycles(self):
        array = PEArray(AcceleratorConfig())
        work = np.zeros(16, dtype=np.int64)
        work[0] = 640  # row 0 has 4 MACs x 16 cols = 64 MACs per cycle
        work[15] = 960  # row 15 has 6 x 16 = 96
        cycles = array.row_weighting_cycles(work)
        assert cycles[0] == 10
        assert cycles[15] == 10
        assert cycles[1] == 0

    def test_row_weighting_requires_full_vector(self):
        array = PEArray(AcceleratorConfig())
        with pytest.raises(ValueError):
            array.row_weighting_cycles(np.ones(4))

    def test_array_aggregation_cycles(self):
        array = PEArray(AcceleratorConfig())
        assert array.array_aggregation_cycles(1216) == 1
        assert array.array_aggregation_cycles(1217) == 2
        assert array.array_aggregation_cycles(0) == 0
        with pytest.raises(ValueError):
            array.array_aggregation_cycles(-5)

    def test_describe_rows(self):
        array = PEArray(AcceleratorConfig())
        rows = array.describe_rows(np.full(16, 128))
        assert len(rows) == 16
        assert rows[0].num_macs_per_cpe == 4
        assert rows[-1].num_macs_per_cpe == 6
        assert all(row.cycles >= 1 for row in rows)
        assert rows[0].effective_throughput > 0
