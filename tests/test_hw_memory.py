"""Tests for the on-chip buffer, DRAM and energy/area models."""

from __future__ import annotations

import pytest

from repro.hw import (
    AcceleratorConfig,
    AreaModel,
    DoubleBuffer,
    EnergyBreakdown,
    EnergyModel,
    HBMModel,
    OnChipBuffer,
)


class TestOnChipBuffer:
    def test_allocate_within_capacity(self):
        buffer = OnChipBuffer("input", capacity_bytes=1000)
        spill = buffer.allocate(600)
        assert spill == 0
        assert buffer.occupancy_bytes == 600
        assert buffer.free_bytes == 400

    def test_allocate_overflow_spills(self):
        buffer = OnChipBuffer("output", capacity_bytes=1000)
        spill = buffer.allocate(1500)
        assert spill == 500
        assert buffer.occupancy_bytes == 1000
        assert buffer.stats.spill_bytes == 500

    def test_release(self):
        buffer = OnChipBuffer("weight", capacity_bytes=100)
        buffer.allocate(80)
        buffer.release(30)
        assert buffer.occupancy_bytes == 50
        buffer.release(1000)
        assert buffer.occupancy_bytes == 0

    def test_access_counters(self):
        buffer = OnChipBuffer("input", capacity_bytes=100)
        buffer.read(10)
        buffer.write(20)
        assert buffer.stats.reads == 1
        assert buffer.stats.bytes_written == 20

    def test_peak_occupancy(self):
        buffer = OnChipBuffer("input", capacity_bytes=100)
        buffer.allocate(60)
        buffer.release(50)
        buffer.allocate(30)
        assert buffer.stats.peak_occupancy_bytes == 60

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            OnChipBuffer("input", capacity_bytes=0)
        buffer = OnChipBuffer("input", capacity_bytes=10)
        with pytest.raises(ValueError):
            buffer.allocate(-1)
        with pytest.raises(ValueError):
            buffer.read(-1)

    def test_reset(self):
        buffer = OnChipBuffer("input", capacity_bytes=100)
        buffer.allocate(50)
        buffer.reset()
        assert buffer.occupancy_bytes == 0
        assert buffer.stats.reads == 0


class TestDoubleBuffer:
    def test_overlap_hides_fetch(self):
        double = DoubleBuffer("weight", capacity_bytes=1024)
        assert double.overlap(compute_cycles=100, fetch_cycles=60) == 100
        assert double.exposed_stall_cycles == 0
        assert double.hidden_fetch_cycles == 60

    def test_overlap_exposes_excess_fetch(self):
        double = DoubleBuffer("input", capacity_bytes=1024)
        assert double.overlap(compute_cycles=40, fetch_cycles=100) == 100
        assert double.exposed_stall_cycles == 60

    def test_invalid(self):
        with pytest.raises(ValueError):
            DoubleBuffer("input", capacity_bytes=0)
        with pytest.raises(ValueError):
            DoubleBuffer("input", capacity_bytes=8).overlap(-1, 0)


class TestHBMModel:
    def test_sequential_transfer_cycles(self):
        dram = HBMModel(bandwidth_bytes_per_s=256e9, frequency_hz=1.3e9)
        bytes_per_cycle = 256e9 / 1.3e9
        assert dram.sequential_transfer_cycles(int(bytes_per_cycle * 10)) == 10
        assert dram.sequential_transfer_cycles(0) == 0

    def test_random_slower_than_sequential_per_byte(self):
        dram = HBMModel()
        sequential = dram.sequential_transfer_cycles(64 * 1000)
        dram.reset()
        random = dram.random_transfer_cycles(1000, bytes_per_access=64)
        assert random > sequential

    def test_random_parallelism_amortizes_penalty(self):
        slow = HBMModel(random_access_parallelism=1)
        fast = HBMModel(random_access_parallelism=16)
        assert slow.random_transfer_cycles(1000) > fast.random_transfer_cycles(1000)

    def test_energy_per_bit(self):
        dram = HBMModel(energy_pj_per_bit=3.97)
        assert dram.transfer_energy_pj(1) == pytest.approx(8 * 3.97)

    def test_stats_accumulate(self):
        dram = HBMModel()
        dram.sequential_transfer_cycles(1000)
        dram.random_transfer_cycles(5)
        assert dram.stats.sequential_bytes == 1000
        assert dram.stats.random_accesses == 5
        assert dram.stats.total_bytes > 1000
        assert dram.total_energy_pj() > 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            HBMModel(bandwidth_bytes_per_s=0)
        dram = HBMModel()
        with pytest.raises(ValueError):
            dram.sequential_transfer_cycles(-1)
        with pytest.raises(ValueError):
            dram.random_transfer_cycles(-1)


class TestEnergyAndArea:
    def test_breakdown_totals(self):
        breakdown = EnergyBreakdown(mac_pj=10, dram_input_pj=5, dram_output_pj=15, static_pj=3)
        assert breakdown.dram_pj == 20
        assert breakdown.total_pj == 33
        assert breakdown.total_joules == pytest.approx(33e-12)

    def test_breakdown_addition(self):
        first = EnergyBreakdown(mac_pj=1, input_buffer_pj=2)
        second = EnergyBreakdown(mac_pj=3, dram_weight_pj=4)
        combined = first + second
        assert combined.mac_pj == 4
        assert combined.input_buffer_pj == 2
        assert combined.dram_weight_pj == 4

    def test_breakdown_as_dict(self):
        keys = EnergyBreakdown().as_dict()
        assert "total_pj" in keys and "dram_output_pj" in keys

    def test_energy_model_components(self):
        model = EnergyModel()
        assert model.mac_energy(100) == pytest.approx(100 * model.mac_energy_pj)
        assert model.dram_energy(1) == pytest.approx(8 * model.dram_pj_per_bit)
        assert model.buffer_energy("output", 10) > model.buffer_energy("weight", 10)
        with pytest.raises(ValueError):
            model.buffer_energy("cache", 10)

    def test_static_energy_scales_with_time(self):
        model = EnergyModel(static_power_watts=1.0)
        one_second_pj = model.static_energy(int(1.3e9), 1.3e9)
        assert one_second_pj == pytest.approx(1e12)

    def test_chip_area_close_to_paper(self):
        """The paper reports 15.6 mm^2 at 32 nm for the GNNIE configuration."""
        area = AreaModel().chip_area_mm2(AcceleratorConfig())
        assert area == pytest.approx(15.6, rel=0.15)

    def test_area_grows_with_macs(self):
        from repro.hw import design_preset

        assert AreaModel().chip_area_mm2(design_preset("D")) > AreaModel().chip_area_mm2(
            design_preset("A")
        )
