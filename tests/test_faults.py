"""Tests for deterministic fault injection and the supervised sweep fleet."""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    ENV_VAR,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    clear_plan,
    install_plan,
    trip,
)
from repro.sweep import ResultStore, RetryPolicy, ScenarioMatrix, SweepError, run_sweep


@pytest.fixture(autouse=True)
def _no_ambient_plan(monkeypatch):
    """Every test starts and ends with no fault plan installed."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    yield
    clear_plan()


@pytest.fixture(scope="module")
def tiny_matrix() -> ScenarioMatrix:
    return ScenarioMatrix.build(
        ["cora"], ["gcn"], backends=["gnnie", "pyg-cpu"], scale=0.1, seed=0
    )


def _lines(path) -> list[str]:
    return sorted(path.read_text().splitlines())


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="cell", kind="raise", match={"dataset": "cora"}, times=2),
                FaultSpec(site="store.append", kind="torn_write", match={"key": "ab"}),
            ),
            seed=42,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            FaultPlan.from_json('{"seed": 1, "oops": []}')
        with pytest.raises(ValueError, match="unknown FaultSpec fields"):
            FaultPlan.from_json('{"specs": [{"site": "cell", "typo": 1}]}')

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="nowhere")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="explode")
        with pytest.raises(ValueError, match="torn_write"):
            FaultSpec(site="cell", kind="torn_write")
        with pytest.raises(ValueError, match="match keys"):
            FaultSpec(site="store.append", match={"dataset": "cora"})
        with pytest.raises(ValueError, match="times"):
            FaultSpec(times=0)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(probability=0.0)

    def test_times_gate_then_quiet(self):
        plan = FaultPlan(specs=(FaultSpec(times=2),))
        assert plan.find("cell", attempt=1, key="k") is not None
        assert plan.find("cell", attempt=2, key="k") is not None
        assert plan.find("cell", attempt=3, key="k") is None
        forever = FaultPlan(specs=(FaultSpec(times=-1),))
        assert forever.find("cell", attempt=99, key="k") is not None

    def test_probability_is_seeded_not_random(self):
        spec = FaultSpec(probability=0.5, times=-1)
        decisions = [
            spec.fires(attempt=n, seed=7, index=0, key="cell-key") for n in range(1, 33)
        ]
        # Identical inputs -> identical decisions, and the hash actually
        # varies across attempts (both outcomes occur at p=0.5 over 32).
        assert decisions == [
            spec.fires(attempt=n, seed=7, index=0, key="cell-key") for n in range(1, 33)
        ]
        assert True in decisions and False in decisions
        other_seed = [
            spec.fires(attempt=n, seed=8, index=0, key="cell-key") for n in range(1, 33)
        ]
        assert decisions != other_seed

    def test_match_constrains_site_attributes(self):
        plan = FaultPlan(
            specs=(FaultSpec(match={"backend": "gnnie", "family": "gat"}, times=-1),)
        )
        assert plan.find("cell", attempt=1, backend="gnnie", family="gat") is not None
        assert plan.find("cell", attempt=1, backend="gnnie", family="gcn") is None
        assert plan.find("store.append", attempt=1, key="x") is None


class TestActivation:
    def test_no_plan_is_a_noop(self):
        assert active_plan() is None
        trip("cell", attempt=1, key="anything")  # must not raise

    def test_inline_json_install_and_trip(self):
        install_plan(FaultPlan(specs=(FaultSpec(match={"key": "boom"}, times=-1),)))
        assert active_plan() is not None
        trip("cell", attempt=1, key="other")  # non-matching target passes
        with pytest.raises(InjectedFault, match="injected fault at cell"):
            trip("cell", attempt=1, key="boom")
        clear_plan()
        assert active_plan() is None

    def test_plan_file_install(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        plan = FaultPlan(specs=(FaultSpec(match={"key": "boom"}, times=-1),), seed=3)
        plan_path.write_text(plan.to_json())
        install_plan(plan_path)
        assert active_plan() == plan

    def test_cache_refreshes_when_plan_changes(self):
        install_plan(FaultPlan(specs=(FaultSpec(match={"key": "a"}, times=-1),)))
        assert active_plan().find("cell", attempt=1, key="a") is not None
        install_plan(FaultPlan(specs=(FaultSpec(match={"key": "b"}, times=-1),)))
        assert active_plan().find("cell", attempt=1, key="a") is None


class TestSupervisedSweep:
    def test_transient_fault_retried_to_identical_success(self, tiny_matrix, tmp_path):
        clean = ResultStore(tmp_path / "clean.jsonl")
        run_sweep(tiny_matrix, store=clean, jobs=1)

        key = tiny_matrix.cells()[0].key()
        install_plan(
            FaultPlan(specs=(FaultSpec(match={"key": key}, times=1),), seed=1)
        )
        chaotic = ResultStore(tmp_path / "chaos.jsonl")
        summary = run_sweep(tiny_matrix, store=chaotic, jobs=1)
        assert summary.failed == 0 and summary.retries == 1
        assert _lines(clean.path) == _lines(chaotic.path)

    def test_chaos_replay_is_byte_identical(self, tiny_matrix, tmp_path):
        """Same plan, same matrix -> same retry count and same store bytes."""
        install_plan(
            FaultPlan(
                specs=(FaultSpec(match={"dataset": "cora"}, probability=0.4, times=-1),),
                seed=11,
            )
        )
        first = ResultStore(tmp_path / "one.jsonl")
        second = ResultStore(tmp_path / "two.jsonl")
        a = run_sweep(tiny_matrix, store=first, jobs=1)
        b = run_sweep(tiny_matrix, store=second, jobs=1)
        assert (a.failed, a.retries) == (b.failed, b.retries)
        assert _lines(first.path) == _lines(second.path)

    def test_poisoned_config_is_isolated_by_degradation(self, tmp_path):
        """One poisoned cell in a batch group fails alone; its group mates
        land healthy rows through the scalar fallback."""
        from repro.hw import design_preset

        matrix = ScenarioMatrix.build(
            ["cora"], ["gcn"], backends=["gnnie"],
            configs=[design_preset(name) for name in "ABC"], scale=0.1, seed=0,
        )
        poisoned = matrix.cells()[1]
        install_plan(
            FaultPlan(
                specs=(FaultSpec(match={"config_name": poisoned.config.name}, times=-1),)
            )
        )
        summary = run_sweep(matrix, store=ResultStore(tmp_path / "p.jsonl"), jobs=1)
        assert summary.total == 3 and summary.failed == 1
        by_key = {row["key"]: row for row in summary.rows}
        assert by_key[poisoned.key()]["status"] == "failed"
        healthy = [row for row in summary.rows if row.get("status") != "failed"]
        assert len(healthy) == 2
        assert all(row["metrics"] is not None for row in healthy)

    def test_strict_policy_reports_every_failure(self, tmp_path):
        matrix = ScenarioMatrix.build(
            ["cora"], ["gcn", "gat"], backends=["gnnie"], scale=0.1, seed=0
        )
        install_plan(FaultPlan(specs=(FaultSpec(match={"backend": "gnnie"}, times=-1),)))
        strict = RetryPolicy(max_attempts=1, failed_rows=False)
        with pytest.raises(SweepError) as excinfo:
            run_sweep(matrix, store=ResultStore(tmp_path / "s.jsonl"), jobs=1, retry=strict)
        failed_keys = {key for f in excinfo.value.failures for key in f["keys"]}
        assert failed_keys == {cell.key() for cell in matrix.cells()}
        assert excinfo.value.rows_landed == 0
        assert all(f["error_type"] == "InjectedFault" for f in excinfo.value.failures)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="timeout_seconds"):
            RetryPolicy(timeout_seconds=0)
        with pytest.raises(ValueError, match="max_disruptions"):
            RetryPolicy(max_disruptions=0)

    def test_backoff_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_max_seconds=0.4)
        delays = [policy.delay("key", attempt) for attempt in (1, 2, 3, 9)]
        assert delays == [policy.delay("key", attempt) for attempt in (1, 2, 3, 9)]
        assert all(0 < delay <= 0.4 for delay in delays)
        assert policy.delay("other-key", 1) != delays[0]
        assert RetryPolicy(backoff_seconds=0.0).delay("key", 1) == 0.0


class TestSupervisedPool:
    """Crash and hang faults need real worker processes (jobs >= 2)."""

    def test_worker_crash_rebuilds_pool_and_completes(self, tiny_matrix, tmp_path):
        clean = ResultStore(tmp_path / "clean.jsonl")
        run_sweep(tiny_matrix, store=clean, jobs=1)

        key = tiny_matrix.cells()[0].key()
        install_plan(
            FaultPlan(specs=(FaultSpec(match={"key": key}, kind="crash", times=1),))
        )
        store = ResultStore(tmp_path / "crash.jsonl")
        summary = run_sweep(tiny_matrix, store=store, jobs=2)
        assert summary.failed == 0
        assert summary.pool_rebuilds >= 1
        assert _lines(clean.path) == _lines(store.path)

    def test_hung_worker_times_out_and_completes(self, tiny_matrix, tmp_path):
        clean = ResultStore(tmp_path / "clean.jsonl")
        run_sweep(tiny_matrix, store=clean, jobs=1)

        key = tiny_matrix.cells()[0].key()
        install_plan(
            FaultPlan(
                specs=(
                    FaultSpec(match={"key": key}, kind="hang", times=1, hang_seconds=30),
                )
            )
        )
        store = ResultStore(tmp_path / "hang.jsonl")
        summary = run_sweep(
            tiny_matrix, store=store, jobs=2, retry=RetryPolicy(timeout_seconds=2.0)
        )
        assert summary.failed == 0
        assert summary.timeouts == 1 and summary.pool_rebuilds >= 1
        assert _lines(clean.path) == _lines(store.path)


class TestFaultsCLI:
    def test_sweep_faults_flag_lands_failed_rows(self, tmp_path, capsys):
        from repro.cli import main
        from repro.sweep.matrix import ScenarioMatrix as SM

        cell = SM.build(["cora"], ["gcn"], backends=["gnnie"], scale=0.1).cells()[0]
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            FaultPlan(
                specs=(FaultSpec(match={"key": cell.key()}, times=-1),)
            ).to_json()
        )
        argv = [
            "sweep",
            "--datasets", "cora",
            "--models", "gcn",
            "--backends", "gnnie",
            "--scale", "0.1",
            "--store", str(tmp_path / "s.jsonl"),
            "--faults", str(plan_path),
            "--json",
        ]
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["failed"] == 1
        assert report["rows"][0]["error"]["type"] == "InjectedFault"

    def test_sweep_strict_flag_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        plan = FaultPlan(specs=(FaultSpec(match={"dataset": "cora"}, times=-1),))
        argv = [
            "sweep",
            "--datasets", "cora",
            "--models", "gcn",
            "--backends", "gnnie",
            "--scale", "0.1",
            "--store", str(tmp_path / "s.jsonl"),
            "--faults", plan.to_json(),
            "--strict",
            "--max-attempts", "1",
        ]
        assert main(argv) == 1
        assert "sweep failed" in capsys.readouterr().err

    def test_sweep_rejects_malformed_plan(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "sweep",
            "--datasets", "cora",
            "--store", str(tmp_path / "s.jsonl"),
            "--faults", '{"oops": 1}',
        ]
        assert main(argv) == 2
        assert "unknown FaultPlan fields" in capsys.readouterr().err
