"""Tests for the shared numerical building blocks (activations, segment ops, MLP)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    MLP,
    glorot_init,
    leaky_relu,
    relu,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
    sigmoid,
    softmax,
)


class TestActivations:
    def test_relu(self):
        np.testing.assert_array_equal(relu(np.array([-2.0, 0.0, 3.0])), [0.0, 0.0, 3.0])

    def test_leaky_relu_slope(self):
        np.testing.assert_allclose(
            leaky_relu(np.array([-10.0, 5.0]), negative_slope=0.2), [-2.0, 5.0]
        )

    def test_sigmoid_range_and_symmetry(self):
        values = np.array([-50.0, -1.0, 0.0, 1.0, 50.0])
        out = sigmoid(values)
        assert np.all((out >= 0) & (out <= 1))
        assert out[2] == pytest.approx(0.5)
        np.testing.assert_allclose(out + sigmoid(-values), 1.0, atol=1e-12)

    def test_sigmoid_extreme_values_stable(self):
        out = sigmoid(np.array([-1e4, 1e4]))
        assert np.isfinite(out).all()

    def test_softmax_rows_sum_to_one(self):
        values = np.random.default_rng(0).normal(size=(5, 7))
        out = softmax(values)
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_softmax_invariant_to_shift(self):
        values = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(values), softmax(values + 100.0))

    def test_softmax_large_values_stable(self):
        out = softmax(np.array([[1e4, 1e4 - 1.0]]))
        assert np.isfinite(out).all()


class TestSegmentOps:
    def test_segment_sum_manual(self):
        values = np.array([[1.0], [2.0], [3.0]])
        ids = np.array([0, 0, 2])
        np.testing.assert_array_equal(segment_sum(values, ids, 3), [[3.0], [0.0], [3.0]])

    def test_segment_max_empty_segment_is_zero(self):
        values = np.array([[1.0], [5.0]])
        ids = np.array([0, 0])
        np.testing.assert_array_equal(segment_max(values, ids, 2), [[5.0], [0.0]])

    def test_segment_mean(self):
        values = np.array([[2.0], [4.0], [6.0]])
        ids = np.array([1, 1, 0])
        np.testing.assert_array_equal(segment_mean(values, ids, 2), [[6.0], [3.0]])

    def test_segment_softmax_sums_to_one_per_segment(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=50)
        ids = rng.integers(5, size=50)
        out = segment_softmax(scores, ids, 5)
        sums = segment_sum(out, ids, 5)
        occupied = np.unique(ids)
        np.testing.assert_allclose(sums[occupied], 1.0)

    def test_segment_softmax_single_element_segments(self):
        out = segment_softmax(np.array([3.0, -1.0]), np.array([0, 1]), 2)
        np.testing.assert_allclose(out, [1.0, 1.0])

    @settings(max_examples=30, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=100),
        segments=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_segment_sum_matches_loop(self, size, segments, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(size, 3))
        ids = rng.integers(segments, size=size)
        fast = segment_sum(values, ids, segments)
        slow = np.zeros((segments, 3))
        for row, segment in zip(values, ids):
            slow[segment] += row
        np.testing.assert_allclose(fast, slow, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=100),
        segments=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_segment_softmax_property(self, size, segments, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=size) * 10
        ids = rng.integers(segments, size=size)
        out = segment_softmax(scores, ids, segments)
        assert np.all(out > 0)
        sums = segment_sum(out, ids, segments)
        for segment in np.unique(ids):
            assert sums[segment] == pytest.approx(1.0)


class TestGlorotAndMLP:
    def test_glorot_bounds(self):
        weights = glorot_init(64, 32, seed=0)
        limit = np.sqrt(6.0 / (64 + 32))
        assert np.all(np.abs(weights) <= limit)
        assert weights.shape == (64, 32)

    def test_glorot_deterministic(self):
        np.testing.assert_array_equal(glorot_init(8, 8, seed=3), glorot_init(8, 8, seed=3))

    def test_mlp_forward_shape(self):
        mlp = MLP.create([16, 32, 4], seed=0)
        out = mlp.forward(np.random.default_rng(0).normal(size=(10, 16)))
        assert out.shape == (10, 4)

    def test_mlp_hidden_relu_applied(self):
        mlp = MLP.create([4, 4, 4], seed=1)
        # Force strongly negative hidden pre-activations; outputs must not
        # explode negatively because the hidden ReLU clamps them.
        mlp.weights[0] = -np.eye(4) * 100.0
        out = mlp.forward(np.ones((1, 4)))
        np.testing.assert_allclose(out[0], mlp.biases[1])

    def test_mlp_output_activations(self):
        inputs = np.random.default_rng(2).normal(size=(6, 8))
        assert np.all(MLP.create([8, 8, 3], output_activation="relu").forward(inputs) >= 0)
        sig = MLP.create([8, 8, 3], output_activation="sigmoid").forward(inputs)
        assert np.all((sig >= 0) & (sig <= 1))
        soft = MLP.create([8, 8, 3], output_activation="softmax").forward(inputs)
        np.testing.assert_allclose(soft.sum(axis=1), 1.0)

    def test_mlp_unknown_activation(self):
        mlp = MLP.create([4, 2], output_activation="tanh")
        with pytest.raises(ValueError):
            mlp.forward(np.ones((1, 4)))

    def test_mlp_parameter_count(self):
        mlp = MLP.create([10, 20, 5])
        assert mlp.num_parameters == 10 * 20 + 20 + 20 * 5 + 5

    def test_mlp_needs_two_sizes(self):
        with pytest.raises(ValueError):
            MLP.create([7])
