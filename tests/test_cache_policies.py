"""Tests for the alternative cache policies (LRU / MRU / static partition)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import (
    compare_cache_policies,
    simulate_lru_policy,
    simulate_mru_policy,
    simulate_static_partition_policy,
)
from repro.graph import CSRGraph, power_law_graph


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(600, 3000, exponent=2.1, seed=91)


class TestClassicPolicies:
    def test_lru_counts_edges_and_misses(self, graph):
        result = simulate_lru_policy(graph, capacity_vertices=60)
        assert result.total_edges_processed == graph.num_edges // 2
        assert result.random_accesses > 0
        assert result.vertex_fetches == graph.num_vertices

    def test_mru_counts_edges(self, graph):
        result = simulate_mru_policy(graph, capacity_vertices=60)
        assert result.total_edges_processed == graph.num_edges // 2
        assert result.random_accesses > 0

    def test_static_partition_pins_hubs(self, graph):
        pinned = simulate_static_partition_policy(graph, capacity_vertices=60)
        lru = simulate_lru_policy(graph, capacity_vertices=60)
        # Pinning the high-degree vertices serves most neighbor accesses
        # from the buffer, so misses drop versus plain LRU.
        assert pinned.random_accesses < lru.random_accesses

    def test_bigger_buffer_fewer_misses(self, graph):
        small = simulate_lru_policy(graph, capacity_vertices=20)
        large = simulate_lru_policy(graph, capacity_vertices=graph.num_vertices)
        assert large.random_accesses < small.random_accesses
        # With the whole graph resident only cold misses remain (each vertex
        # fetched out of order at most once).
        assert large.random_accesses <= graph.num_vertices

    def test_invalid_capacity(self, graph):
        with pytest.raises(ValueError):
            simulate_lru_policy(graph, capacity_vertices=0)
        with pytest.raises(ValueError):
            simulate_static_partition_policy(graph, capacity_vertices=0)


class TestEdgeCases:
    """Degenerate buffer/graph shapes every policy must survive."""

    def test_capacity_one_buffer(self, graph):
        undirected = graph.num_edges // 2
        for simulate in (
            simulate_lru_policy,
            simulate_mru_policy,
            simulate_static_partition_policy,
        ):
            result = simulate(graph, capacity_vertices=1)
            assert result.total_edges_processed == undirected
            # A one-slot buffer cannot co-locate any endpoint pair, so every
            # neighbor access that isn't a pinned hub misses.
            assert result.random_accesses > 0
            assert result.vertex_fetches == graph.num_vertices

    def test_single_vertex_graph(self):
        lonely = CSRGraph(indptr=np.array([0, 0]), indices=np.array([], dtype=np.int64))
        for simulate in (
            simulate_lru_policy,
            simulate_mru_policy,
            simulate_static_partition_policy,
        ):
            result = simulate(lonely, capacity_vertices=4)
            assert result.total_edges_processed == 0
            assert result.random_accesses == 0
            assert result.vertex_fetches == 1

    def test_pinned_set_at_least_capacity(self, graph):
        # capacity 1 pins max(1, 1-1) = 1 vertex, so the pinned set fills the
        # whole buffer and every unpinned vertex streams through the single
        # fallback slot; the walk must still terminate and count every edge.
        result = simulate_static_partition_policy(graph, capacity_vertices=1)
        assert result.total_edges_processed == graph.num_edges // 2
        assert result.random_accesses > 0

    def test_pinned_set_larger_than_replaceable_capacity(self, graph):
        # With capacity 2 the pinned hub occupies half the buffer; the other
        # slot takes all streaming traffic.
        small = simulate_static_partition_policy(graph, capacity_vertices=2)
        large = simulate_static_partition_policy(graph, capacity_vertices=120)
        assert small.random_accesses >= large.random_accesses


class TestPolicyComparison:
    @pytest.fixture(scope="class")
    def comparison(self, graph):
        return compare_cache_policies(graph, capacity_vertices=60)

    def test_all_policies_present(self, comparison):
        assert set(comparison) == {"degree_aware", "lru", "mru", "static_partition"}

    def test_every_policy_processes_all_edges(self, comparison, graph):
        undirected = graph.num_edges // 2
        assert all(
            result.total_edges_processed == undirected for result in comparison.values()
        )

    def test_degree_aware_is_the_only_random_free_policy(self, comparison):
        assert comparison["degree_aware"].random_accesses == 0
        for name in ("lru", "mru", "static_partition"):
            assert comparison[name].random_accesses > 0

    def test_degree_aware_total_traffic_competitive(self, comparison):
        """GNNIE's policy may refetch vertices over Rounds, but its total DRAM
        traffic stays within a small factor of the best classic policy while
        avoiding random accesses entirely."""
        degree_bytes = comparison["degree_aware"].total_dram_bytes
        best_classic = min(
            comparison[name].total_dram_bytes for name in ("lru", "mru", "static_partition")
        )
        assert degree_bytes < 5 * best_classic
