"""Tests for the analysis helpers behind the figure reproductions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    alpha_round_histograms,
    beta_metric,
    compare_against_platform,
    design_beta_study,
    feature_nonzero_histogram,
    format_scientific,
    format_series,
    format_table,
    geometric_mean,
    speedup_table,
    weighting_row_profile,
)
from repro.baselines import PyGCPUModel
from repro.hw import AcceleratorConfig
from repro.sim import GNNIESimulator, run_cache_simulation


class TestSparsityHistogram:
    def test_counts_cover_all_vertices(self, small_cora):
        histogram = feature_nonzero_histogram(small_cora)
        assert histogram.num_vertices == small_cora.num_vertices
        assert histogram.sparsity == pytest.approx(small_cora.feature_sparsity())

    def test_spread_ratio_shows_rabbit_turtle_gap(self, small_cora):
        histogram = feature_nonzero_histogram(small_cora)
        assert histogram.spread_ratio() > 1.5

    def test_mean_median_max_consistent(self, small_cora):
        histogram = feature_nonzero_histogram(small_cora)
        assert histogram.median_nonzeros <= histogram.max_nonzeros
        assert histogram.mean_nonzeros <= histogram.max_nonzeros


class TestAlphaRounds:
    def test_histograms_flatten(self, medium_graph):
        config = AcceleratorConfig(input_buffer_bytes=16 * 1024)
        result = run_cache_simulation(medium_graph.adjacency, config, 64)
        histograms = alpha_round_histograms(result)
        assert len(histograms) >= 2
        maxima = [h.max_alpha for h in histograms]
        peaks = [h.peak_frequency for h in histograms]
        assert all(b <= a for a, b in zip(maxima, maxima[1:]))
        assert all(b <= a for a, b in zip(peaks, peaks[1:]))

    def test_empty_result(self):
        from repro.cache import CacheSimulationResult

        assert alpha_round_histograms(CacheSimulationResult()) == []


class TestRowProfileAndBeta:
    def test_fig16_ordering(self, small_cora):
        profile = weighting_row_profile(small_cora)
        assert profile.baseline_imbalance >= profile.fm_imbalance >= profile.fm_lr_imbalance
        assert profile.fm_cycle_reduction > 0
        assert profile.fm_lr_cycle_reduction >= profile.fm_cycle_reduction

    def test_beta_metric_formula(self):
        assert beta_metric(1000, 800, 1024, 1224) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            beta_metric(1000, 800, 1024, 1024)

    def test_design_beta_study_shape(self, small_cora):
        betas = design_beta_study(small_cora)
        assert set(betas) == {"B", "C", "D", "E"}
        # Uniformly adding MACs has diminishing returns (Fig. 17).
        assert betas["B"] >= betas["C"] >= betas["D"]
        # The flexible-MAC design E gives the best speedup per added MAC.
        assert betas["E"] > betas["B"]


class TestSpeedupHelpers:
    def test_compare_against_platform(self, tiny_graph):
        gnnie = GNNIESimulator().run(tiny_graph, "gcn")
        entry = compare_against_platform(gnnie, tiny_graph, PyGCPUModel())
        assert entry.speedup > 1
        assert entry.energy_efficiency_gain > 0
        assert entry.platform == "PyG-CPU"

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([5.0, 0.0]) == pytest.approx(5.0)

    def test_speedup_table_structure(self, tiny_graph):
        gnnie = GNNIESimulator().run(tiny_graph, "gcn")
        entry = compare_against_platform(gnnie, tiny_graph, PyGCPUModel())
        table = speedup_table([entry])
        assert table["GCN"][tiny_graph.name] == pytest.approx(entry.speedup)


class TestReporting:
    def test_format_scientific(self):
        assert format_scientific(0) == "0"
        assert "e" in format_scientific(123456.0)
        assert format_scientific(12.345) == "12.35"
        assert "e" in format_scientific(0.0001)

    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 1e7}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "a" in text and "b" in text
        assert len(text.splitlines()) == 5

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="none")

    def test_format_series(self):
        text = format_series({"gcn": [1.0, 2.0], "gat": {"CR": 3.0}}, title="speedups")
        assert "speedups" in text
        assert "gcn" in text and "CR=3" in text
