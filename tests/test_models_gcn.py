"""Tests for the GCN reference layer against a dense matrix formulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph
from repro.models import GCNLayer, GNNModel


def dense_gcn_reference(adjacency: CSRGraph, features: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """σ-free dense reference: Ã (H W) with Ã = D^-1/2 (A + I) D^-1/2."""
    dense = adjacency.to_dense()
    augmented = dense + np.eye(adjacency.num_vertices)
    degrees = augmented.sum(axis=1)
    inv_sqrt = np.diag(1.0 / np.sqrt(degrees))
    normalized = inv_sqrt @ augmented @ inv_sqrt
    return normalized @ (features @ weight)


@pytest.fixture()
def small_setup():
    rng = np.random.default_rng(0)
    edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
    adjacency = CSRGraph.from_edge_list(edges, num_vertices=5, symmetric=True)
    features = rng.normal(size=(5, 8))
    return adjacency, features


class TestGCNLayer:
    def test_matches_dense_reference(self, small_setup):
        adjacency, features = small_setup
        layer = GCNLayer(8, 4, activation="none", seed=1)
        expected = dense_gcn_reference(adjacency, features, layer.weight)
        np.testing.assert_allclose(layer.forward(adjacency, features), expected, atol=1e-10)

    def test_relu_activation_applied(self, small_setup):
        adjacency, features = small_setup
        layer = GCNLayer(8, 4, activation="relu", seed=1)
        assert np.all(layer.forward(adjacency, features) >= 0)

    def test_isolated_vertex_keeps_self_contribution(self):
        adjacency = CSRGraph.from_edge_list([(0, 1)], num_vertices=3, symmetric=True)
        features = np.eye(3)
        layer = GCNLayer(3, 3, activation="none", seed=2)
        out = layer.forward(adjacency, features)
        # Vertex 2 is isolated: its output is its own weighted features
        # scaled by 1/d = 1 (degree 1 after the self loop).
        np.testing.assert_allclose(out[2], features[2] @ layer.weight, atol=1e-12)

    def test_wrong_feature_width_rejected(self, small_setup):
        adjacency, _ = small_setup
        layer = GCNLayer(8, 4)
        with pytest.raises(ValueError):
            layer.forward(adjacency, np.ones((5, 3)))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            GCNLayer(0, 4)

    def test_workload_counts(self, small_setup):
        adjacency, features = small_setup
        layer = GCNLayer(8, 4)
        workload = layer.workload(adjacency, features)
        assert workload.weighting_macs == np.count_nonzero(features) * 4
        assert workload.aggregation_ops == (adjacency.num_edges + 5) * 4
        assert workload.attention_ops == 0
        assert workload.total_ops > 0

    def test_weight_matrices(self):
        layer = GCNLayer(8, 4)
        assert len(layer.weight_matrices()) == 1
        assert layer.weight_matrices()[0].shape == (8, 4)


class TestGNNModelStack:
    def test_two_layer_forward_shape(self, small_setup):
        adjacency, features = small_setup
        model = GNNModel([GCNLayer(8, 16, seed=0), GCNLayer(16, 3, activation="none", seed=1)])
        out = model.forward(adjacency, features)
        assert out.shape == (5, 3)

    def test_layer_outputs_lengths(self, small_setup):
        adjacency, features = small_setup
        model = GNNModel([GCNLayer(8, 16, seed=0), GCNLayer(16, 3, seed=1)])
        outputs = model.layer_outputs(adjacency, features)
        assert len(outputs) == 2
        assert outputs[0].shape == (5, 16)

    def test_dimension_chain_checked(self):
        with pytest.raises(ValueError):
            GNNModel([GCNLayer(8, 16), GCNLayer(8, 3)])

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            GNNModel([])

    def test_model_workload_accumulates(self, small_setup):
        adjacency, features = small_setup
        model = GNNModel([GCNLayer(8, 16, seed=0), GCNLayer(16, 3, seed=1)])
        total = model.workload(adjacency, features)
        first = model.layers[0].workload(adjacency, features)
        assert total.weighting_macs > first.weighting_macs
        assert total.dram_bytes > first.dram_bytes
