"""Batch execution: byte-equivalence, memo sharing, and obs integration.

The vectorized batch layer (``GNNIEExecutor.execute_batch``, the sweep
runner's per-group dispatch, :mod:`repro.sim.batch`) promises one thing
above all: *sharing state across a batch never changes a row*.  These tests
pin that promise through the result store's canonical serialization, then
check the two behaviours the sharing exists for — cache-simulation dedupe
across a dataset group, and truthful per-cell observability.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.hw import AcceleratorConfig
from repro.models import MODEL_FAMILIES
from repro.obs import MetricsRegistry
from repro.sim.batch import clear_pricing_contexts, pricing_context
from repro.sweep import (
    ScenarioMatrix,
    run_batch_timed,
    run_cell,
    run_sweep,
)
from repro.sweep.store import canonical_row


def _mixed_configs() -> list[AcceleratorConfig]:
    """A mixed batch of ≥20 configs varying every batch-relevant knob."""
    base = AcceleratorConfig()
    configs = [base]
    for cols, macs in ((8, (4, 5, 6)), (16, (2, 4, 8)), (24, (4, 6, 8))):
        configs.append(
            replace(base, num_cols=cols, macs_per_group=macs, name=f"macs{cols}x{macs[0]}")
        )
    for kb in (128, 256, 1024):
        configs.append(replace(base, input_buffer_bytes=kb * 1024, name=f"buf{kb}k"))
    for gamma in (2, 3, 8):
        configs.append(replace(base, gamma=gamma, name=f"gamma{gamma}"))
    for mechanisms in (("miss",), ("victim",), ("miss", "stream", "victim")):
        configs.append(
            replace(base, miss_path_mechanisms=mechanisms, name="+".join(mechanisms))
        )
    for bits in (1, 2):
        configs.append(replace(base, bytes_per_value=bits, name=f"b{bits}"))
    configs.append(replace(base, enable_degree_aware_caching=False, name="nocache"))
    configs.append(replace(base, enable_flexible_mac=False, name="noflex"))
    configs.append(replace(base, enable_zero_skipping=False, name="nozskip"))
    configs.append(replace(base, victim_cache_entries=4, name="victim4"))
    configs.append(replace(base, stream_buffer_count=8, name="stream8"))
    configs.append(
        replace(base, gamma=2, input_buffer_bytes=128 * 1024, name="gamma2buf128k")
    )
    assert len(configs) >= 20
    return configs


class TestBatchScalarEquivalence:
    def test_batch_rows_byte_identical_to_scalar_rows(self):
        """Satellite: ≥20 mixed configs x all 5 families, batch == scalar.

        The batch path shares one executor (and the module-level pricing
        context) across a family group; the scalar path builds a fresh
        executor per cell.  Both must serialize to identical bytes through
        the store's canonical form.
        """
        matrix = ScenarioMatrix.build(
            ["citeseer"],
            list(MODEL_FAMILIES),
            backends=["gnnie"],
            scale=0.2,
            seed=3,
            configs=_mixed_configs(),
        )
        cells = matrix.cells()
        assert len(cells) >= 100  # 5 families x >=20 configs

        clear_pricing_contexts()
        batch_rows = []
        for family in MODEL_FAMILIES:
            group = [cell for cell in cells if cell.family == family]
            batch_rows.extend(row for row, _, _ in run_batch_timed(group))

        clear_pricing_contexts()
        scalar_rows = [run_cell(cell) for cell in cells]

        assert [canonical_row(row) for row in batch_rows] == [
            canonical_row(row) for row in scalar_rows
        ]

    def test_executor_batch_matches_scalar_results(self):
        from repro.datasets import build_dataset
        from repro.plan.lowering import lower
        from repro.sim import result_to_dict
        from repro.sim.gnnie_executor import GNNIEExecutor

        graph = build_dataset("cora", scale=0.2, seed=5)
        plan = lower("gat", graph)
        configs = _mixed_configs()[:8]
        batch = GNNIEExecutor().execute_batch(plan, graph, configs)
        scalar = [GNNIEExecutor().execute(plan, graph, cfg) for cfg in configs]
        assert [result_to_dict(r) for r in batch] == [result_to_dict(r) for r in scalar]


class TestCacheSimSharing:
    def test_inline_sweep_dedupes_cache_sims_across_group(self):
        """Satellite: ``jobs=1`` shares one executor's cache-sim memo across
        a whole dataset group instead of re-simulating per cell."""
        gammas = [replace(AcceleratorConfig(), gamma=g, name=f"g{g}") for g in (2, 4)]
        matrix = ScenarioMatrix.build(
            ["cora"],
            ["gcn", "gat"],
            backends=["gnnie"],
            scale=0.1,
            seed=0,
            configs=[AcceleratorConfig()] + gammas,
        )
        clear_pricing_contexts()
        metrics = MetricsRegistry()
        summary = run_sweep(matrix, jobs=1, metrics=metrics)
        assert summary.executed == 6  # 2 families x 3 configs

        runs = metrics.counter("executor.cache_sim.runs").value
        memo_hits = metrics.counter("executor.cache_sim.memo_hits").value
        context_hits = metrics.counter("executor.cache_sim.context_hits").value
        # One simulation per distinct (graph, buffer config): the three
        # configs differ only in gamma, which IS part of the cache key, so
        # three runs for the first family — and the second family's group
        # serves all three from the shared pricing context.
        assert runs == 3
        assert context_hits == 3
        # Within a group, each family's multi-layer plan re-prices the same
        # cache sim per layer/config from the executor memo.
        assert memo_hits > 0

    def test_scalar_escape_hatch_pays_per_cell(self, monkeypatch):
        """REPRO_NO_BATCH=1 restores fresh-executor-per-cell pricing (the
        context still dedupes the raw simulations, so ``runs`` stays put but
        nothing is shared at the executor level)."""
        matrix = ScenarioMatrix.build(
            ["cora"], ["gcn"], backends=["gnnie"], scale=0.1, seed=0,
            configs=[AcceleratorConfig(), replace(AcceleratorConfig(), gamma=2, name="g2")],
        )
        clear_pricing_contexts()
        metrics = MetricsRegistry()
        monkeypatch.setenv("REPRO_NO_BATCH", "1")
        batch_metrics = MetricsRegistry()
        run_sweep(matrix, jobs=1, metrics=batch_metrics)
        monkeypatch.delenv("REPRO_NO_BATCH")
        clear_pricing_contexts()
        summary = run_sweep(matrix, jobs=1, metrics=metrics)
        assert summary.executed == 2
        assert metrics.counter("executor.cache_sim.runs").value == 2

    def test_pricing_context_is_per_graph_and_collected(self):
        from repro.datasets import build_dataset

        graph = build_dataset("cora", scale=0.1, seed=9)
        context = pricing_context(graph)
        assert pricing_context(graph) is context
        other = build_dataset("cora", scale=0.1, seed=10)
        assert pricing_context(other) is not context

    def test_stale_finalizer_cannot_evict_an_id_aliased_live_context(self):
        """A dead graph's finalizer must not drop a live graph's context.

        Regression test: ``id()`` values recycle after GC, so the finalizer
        of a collected graph can fire with a key that a *new* graph has
        since re-registered.  The old unconditional ``_CONTEXTS.pop(key)``
        evicted the live context (silently dropping its shared memos); the
        pop is now guarded on context identity.
        """
        from repro.datasets import build_dataset
        from repro.sim.batch import _CONTEXTS, _evict_context, GraphPricingContext

        graph = build_dataset("cora", scale=0.1, seed=9)
        live = pricing_context(graph)
        key = id(graph)
        assert _CONTEXTS[key] is live

        # A finalizer of a *dead* graph firing late with the same (recycled)
        # id must leave the live registration alone...
        stale = GraphPricingContext(graph)
        _evict_context(key, stale)
        assert _CONTEXTS.get(key) is live
        assert pricing_context(graph) is live

        # ...while the matching context still evicts cleanly.
        _evict_context(key, live)
        assert key not in _CONTEXTS


class TestBatchObservability:
    def test_progress_fires_once_per_cell_under_batch(self):
        """Satellite: batch dispatch still reports per-cell progress with
        the 6-arg callback — one call per cell, monotonic done/total,
        positive per-cell wall time."""
        matrix = ScenarioMatrix.build(
            ["cora"], ["gcn", "gat"], backends=["gnnie", "awb-gcn"], scale=0.1, seed=0
        )
        seen = []
        summary = run_sweep(
            matrix,
            jobs=1,
            progress=lambda cell, row, done, total, cached, wall_s: seen.append(
                (cell.key(), done, total, cached, wall_s)
            ),
        )
        assert len(seen) == summary.total == 4
        assert [done for _, done, _, _, _ in seen] == [1, 2, 3, 4]
        assert all(total == 4 and not cached for _, _, total, cached, _ in seen)
        assert all(wall_s >= 0.0 for *_, wall_s in seen)
        assert len({key for key, *_ in seen}) == 4

    def test_batch_cells_feed_sweep_metrics(self):
        matrix = ScenarioMatrix.build(
            ["cora"], ["gcn", "gat"], backends=["gnnie", "hygcn"], scale=0.1, seed=0
        )
        metrics = MetricsRegistry()
        summary = run_sweep(matrix, jobs=1, metrics=metrics)
        assert metrics.counter("sweep.cells.executed").value == summary.executed == 4
        assert metrics.counter("sweep.cell_wall_seconds").value > 0.0

    def test_batch_cells_emit_traces(self):
        from repro.obs import Tracer

        matrix = ScenarioMatrix.build(
            ["cora"], ["gcn", "gat"], backends=["gnnie"], scale=0.1, seed=0
        )
        tracer = Tracer()
        run_sweep(matrix, jobs=1, tracer=tracer)
        names = [record.name for record in tracer.records]
        # One "cell" span per executed cell, each with per-layer children.
        assert names.count("cell") == 2
        assert "sweep" in names
        assert any(name.startswith("layer") for name in names)
        assert any(name.startswith("op:") for name in names)


@pytest.fixture(autouse=True)
def _fresh_contexts():
    """Each test starts and ends with a clean context registry so module
    order cannot leak warm memos into the dedupe assertions."""
    clear_pricing_contexts()
    yield
    clear_pricing_contexts()
