"""The plan verifier: every rule rejects its malformed plan, every real plan passes.

Two halves:

* **Failure modes** — hand-built malformed plans (halo op without a
  following aggregation, inter-layer width mismatch, negative MAC count,
  preprocess op in layer 1, …) each raise
  :class:`~repro.check.PlanVerificationError` naming the violated rule.
* **Soundness on real plans** — a hypothesis property that every plan
  ``lower()`` produces for all 5 families verifies clean, the full
  family x dataset registry matrix verifies clean, and multi-chip plans
  with spliced halo ops verify clean.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.check import (
    PlanVerificationError,
    plan_violations,
    register_verifier_rule,
    verifier_rules,
    verify_counters,
    verify_plan,
    verify_registered_plans,
)
from repro.check.verifier import NO_VERIFY_ENV
from repro.models.zoo import MODEL_FAMILIES, model_config
from repro.plan.ir import (
    AdjacencyRef,
    AggregationOp,
    AttentionOp,
    DenseMatmulOp,
    HaloExchangeOp,
    InferencePlan,
    PlanLayer,
    PreprocessOp,
    SampleOp,
    WeightingOp,
)
from repro.plan.lowering import lower_model


def _gcn_layer(index: int, fan_in: int, fan_out: int, *, ops=None) -> PlanLayer:
    if ops is None:
        ops = (
            WeightingOp(in_features=fan_in, out_features=fan_out, is_input_layer=index == 0),
            AggregationOp(in_features=fan_in, out_features=fan_out),
        )
    return PlanLayer(index=index, in_features=fan_in, out_features=fan_out, ops=ops)


def _gcn_plan(*, layers=None, global_ops=(PreprocessOp(),), family: str = "gcn") -> InferencePlan:
    if layers is None:
        layers = (_gcn_layer(0, 16, 8), _gcn_layer(1, 8, 4))
    return InferencePlan(
        family=family, in_features=16, out_features=4, layers=layers, global_ops=global_ops
    )


def _rules_of(plan: InferencePlan) -> set[str]:
    return {violation.rule for violation in plan_violations(plan)}


def test_well_formed_plan_verifies_clean():
    plan = _gcn_plan()
    assert plan_violations(plan) == ()
    assert verify_plan(plan) is plan


def test_error_carries_rule_layer_and_op():
    layers = (
        _gcn_layer(0, 16, 8),
        _gcn_layer(1, 8, 4, ops=(_gcn_layer(1, 8, 4).ops[0], _gcn_layer(1, 8, 4).ops[1], PreprocessOp())),
    )
    plan = _gcn_plan(layers=layers)
    with pytest.raises(PlanVerificationError) as excinfo:
        verify_plan(plan)
    error = excinfo.value
    assert error.rule == "P003"
    assert error.layer == 1
    assert error.op == "PreprocessOp"
    assert "P003" in str(error)


def test_empty_plan_violates_layer_structure():
    plan = _gcn_plan(layers=())
    assert "P002" in _rules_of(plan)


def test_shuffled_layer_indices_violate_p002():
    plan = _gcn_plan(layers=(_gcn_layer(1, 16, 8), _gcn_layer(0, 8, 4)))
    assert "P002" in _rules_of(plan)


def test_preprocess_in_layer_1_violates_p003():
    bad = _gcn_layer(1, 8, 4)
    bad = dataclasses.replace(bad, ops=bad.ops + (PreprocessOp(),))
    plan = _gcn_plan(layers=(_gcn_layer(0, 16, 8), bad))
    assert "P003" in _rules_of(plan)


def test_sampled_adjacency_without_sampleop_violates_p004():
    ops = (
        WeightingOp(in_features=16, out_features=4, is_input_layer=True),
        AggregationOp(
            in_features=16,
            out_features=4,
            adjacency=AdjacencyRef(kind="sampled", sample_size=25),
        ),
    )
    plan = _gcn_plan(layers=(_gcn_layer(0, 16, 4, ops=ops),), family="plugin")
    assert "P004" in _rules_of(plan)


def test_sampleop_after_its_aggregation_violates_p004():
    ops = (
        WeightingOp(in_features=16, out_features=4, is_input_layer=True),
        AggregationOp(
            in_features=16,
            out_features=4,
            adjacency=AdjacencyRef(kind="sampled", sample_size=25),
        ),
        SampleOp(sample_size=25),
    )
    plan = _gcn_plan(layers=(_gcn_layer(0, 16, 4, ops=ops),), family="plugin")
    assert "P004" in _rules_of(plan)


def test_halo_without_following_aggregation_violates_p005():
    ops = (
        WeightingOp(in_features=16, out_features=4, is_input_layer=True),
        AggregationOp(in_features=16, out_features=4),
        HaloExchangeOp(halo_vertices=10, features=4, chips=4),
    )
    plan = _gcn_plan(layers=(_gcn_layer(0, 16, 4, ops=ops),), family="plugin")
    assert "P005" in _rules_of(plan)


def test_halo_in_single_chip_plan_violates_p005():
    ops = (
        WeightingOp(in_features=16, out_features=4, is_input_layer=True),
        HaloExchangeOp(halo_vertices=10, features=4, chips=1),
        AggregationOp(in_features=16, out_features=4),
    )
    plan = _gcn_plan(layers=(_gcn_layer(0, 16, 4, ops=ops),), family="plugin")
    assert "P005" in _rules_of(plan)


def test_halo_width_mismatch_violates_p005():
    ops = (
        WeightingOp(in_features=16, out_features=4, is_input_layer=True),
        HaloExchangeOp(halo_vertices=10, features=7, chips=4),
        AggregationOp(in_features=16, out_features=4),
    )
    plan = _gcn_plan(layers=(_gcn_layer(0, 16, 4, ops=ops),), family="plugin")
    assert "P005" in _rules_of(plan)


def test_negative_mac_count_violates_p006():
    ops = (
        DenseMatmulOp(in_features=8, out_features=4, macs_per_edge=-5, macs_per_vertex=0),
    )
    plan = _gcn_plan(layers=(_gcn_layer(0, 16, 4, ops=ops),), family="plugin")
    assert "P006" in _rules_of(plan)


def test_nonfinite_density_violates_p006():
    ops = (
        WeightingOp(in_features=16, out_features=4, density=float("nan")),
        AggregationOp(in_features=16, out_features=4),
    )
    plan = _gcn_plan(layers=(_gcn_layer(0, 16, 4, ops=ops),), family="plugin")
    assert "P006" in _rules_of(plan)


def test_density_above_one_violates_p006():
    ops = (
        WeightingOp(in_features=16, out_features=4, density=1.5),
        AggregationOp(in_features=16, out_features=4),
    )
    plan = _gcn_plan(layers=(_gcn_layer(0, 16, 4, ops=ops),), family="plugin")
    assert "P006" in _rules_of(plan)


def test_interlayer_width_mismatch_violates_p101():
    plan = _gcn_plan(layers=(_gcn_layer(0, 16, 8), _gcn_layer(1, 6, 4)))
    assert "P101" in _rules_of(plan)


def test_width_flow_not_enforced_for_unregistered_families():
    """Plug-in families without a contract get the universal tier only."""
    plan = _gcn_plan(layers=(_gcn_layer(0, 16, 8), _gcn_layer(1, 6, 4)), family="plugin")
    rules = _rules_of(plan)
    assert "P101" not in rules and "P102" not in rules


def test_gat_without_attention_violates_p102():
    config = model_config("gat")
    plan = lower_model(config, 16, 4)
    stripped_layers = tuple(
        dataclasses.replace(
            layer,
            ops=tuple(
                dataclasses.replace(op, weighted=False)
                if isinstance(op, AggregationOp)
                else op
                for op in layer.ops
                if not isinstance(op, AttentionOp)
            ),
        )
        for layer in plan.layers
    )
    stripped = dataclasses.replace(plan, layers=stripped_layers)
    assert "P102" in _rules_of(stripped)


def test_gat_unweighted_aggregation_violates_p102():
    plan = lower_model(model_config("gat"), 16, 4)
    layers = tuple(
        dataclasses.replace(
            layer,
            ops=tuple(
                dataclasses.replace(op, weighted=False)
                if isinstance(op, AggregationOp)
                else op
                for op in layer.ops
            ),
        )
        for layer in plan.layers
    )
    assert "P102" in _rules_of(dataclasses.replace(plan, layers=layers))


def test_diffpool_without_dense_matmul_violates_p102():
    plan = lower_model(model_config("diffpool"), 16, 4)
    coarsening = plan.layers[2]
    gutted = dataclasses.replace(
        coarsening,
        ops=tuple(op for op in coarsening.ops if not isinstance(op, DenseMatmulOp)),
    )
    bad = dataclasses.replace(plan, layers=plan.layers[:2] + (gutted,))
    assert "P102" in _rules_of(bad)


def test_every_rule_has_a_contract_docstring():
    rules = verifier_rules()
    assert set(rules) >= {"P001", "P002", "P003", "P004", "P005", "P006", "P101", "P102"}
    for rule in rules.values():
        assert rule.__doc__ and rule.__doc__.strip()


def test_duplicate_rule_id_raises():
    with pytest.raises(ValueError, match="already registered"):
        register_verifier_rule("P001")(lambda plan: ())


# --------------------------------------------------------------------- #
# Soundness on real plans
# --------------------------------------------------------------------- #

@settings(max_examples=60, deadline=None)
@given(
    family=st.sampled_from(MODEL_FAMILIES),
    in_features=st.integers(min_value=1, max_value=2048),
    out_features=st.integers(min_value=1, max_value=256),
)
def test_every_lowered_plan_verifies_clean(family, in_features, out_features):
    plan = lower_model(model_config(family), in_features, out_features)
    assert plan_violations(plan) == ()


def test_full_registry_matrix_verifies_clean():
    rows = verify_registered_plans()
    assert len(rows) == 25  # 5 families x 5 datasets
    assert all(row["ok"] for row in rows)


def test_chip_plans_with_spliced_halos_verify_clean():
    from repro.datasets import build_dataset
    from repro.plan.lowering import lower
    from repro.scaleout.engine import partition_workload

    graph = build_dataset("cora", scale=0.05, seed=7)
    plan = lower("gcn", graph)
    workload = partition_workload(graph, plan, 4)
    for chip_plan in workload.chip_plans:
        assert plan_violations(chip_plan) == ()


def test_verify_plan_is_memoized_by_content():
    before = verify_counters()
    plan_a = _gcn_plan()
    plan_b = _gcn_plan()  # distinct object, equal content
    assert plan_a is not plan_b
    verify_plan(plan_a)
    after_first = verify_counters()
    verify_plan(plan_b)
    after_second = verify_counters()
    assert after_first["runs"] >= before["runs"]
    assert after_second["runs"] == after_first["runs"]
    assert after_second["hits"] == after_first["hits"] + 1


def test_no_verify_env_skips_verification(monkeypatch):
    plan = _gcn_plan(layers=(_gcn_layer(0, 16, 8), _gcn_layer(1, 6, 4)))
    with pytest.raises(PlanVerificationError):
        verify_plan(plan)
    monkeypatch.setenv(NO_VERIFY_ENV, "1")
    assert verify_plan(plan) is plan
    # force=True (the `repro check` path) verifies regardless.
    with pytest.raises(PlanVerificationError):
        verify_plan(plan, force=True)


def test_executor_rejects_malformed_plan():
    from repro.datasets import build_dataset
    from repro.sim.gnnie_executor import GNNIEExecutor

    graph = build_dataset("cora", scale=0.05, seed=7)
    plan = _gcn_plan(layers=(_gcn_layer(0, 16, 8), _gcn_layer(1, 6, 4)))
    with pytest.raises(PlanVerificationError):
        GNNIEExecutor().execute(plan, graph)


def test_platform_rejects_malformed_plan():
    from repro.datasets import build_dataset
    from repro.plan.executor import executor

    graph = build_dataset("cora", scale=0.05, seed=7)
    plan = _gcn_plan(layers=(_gcn_layer(0, 16, 8), _gcn_layer(1, 6, 4)))
    with pytest.raises(PlanVerificationError):
        executor("hygcn").execute(plan, graph)
