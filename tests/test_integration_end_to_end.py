"""End-to-end integration and robustness tests.

These tests exercise the whole stack together: functional models vs the
blocked hardware mapping, the simulator across unusual graph shapes
(stars, chains, near-empty graphs), and consistency between the analysis
helpers and the simulator outputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import CachePolicyConfig, DegreeAwareCacheController
from repro.datasets import tiny_dataset
from repro.graph import CSRGraph, Graph
from repro.hw import AcceleratorConfig
from repro.mapping import (
    AggregationCycleModel,
    attention_terms_functional,
    weighting_functional,
)
from repro.models import GATLayer, GCNLayer, build_model, segment_sum
from repro.sim import GNNIESimulator, result_to_dict


# --------------------------------------------------------------------------- #
# Functional equivalence of the hardware mapping, end to end
# --------------------------------------------------------------------------- #
class TestMappingMatchesReferenceModels:
    """The blocked/cached execution order must reproduce the reference GNN."""

    @pytest.fixture(scope="class")
    def graph(self):
        return tiny_dataset(num_vertices=48, feature_length=40, num_labels=5, seed=9)

    def test_gcn_layer_via_blocked_weighting_and_cached_aggregation(self, graph):
        """Weighting in k-blocks + aggregation in cache-controller order ==
        the reference GCN layer (up to float tolerance)."""
        config = AcceleratorConfig()
        layer = GCNLayer(graph.feature_length, 16, activation="none", seed=4)

        # Hardware-order Weighting.
        weighted = weighting_functional(graph.features, layer.weight, config)

        # Hardware-order Aggregation: process edges in the order the cache
        # controller schedules them (subgraph by subgraph).
        adjacency = graph.adjacency
        degrees = adjacency.degrees().astype(np.float64) + 1.0
        inv_sqrt = 1.0 / np.sqrt(degrees)
        controller = DegreeAwareCacheController(
            adjacency,
            CachePolicyConfig(capacity_vertices=12, gamma=3),
            bytes_per_vertex=64,
        )
        cache_result = controller.run()
        assert cache_result.total_edges_processed == adjacency.num_edges // 2

        directed = adjacency.edge_array()
        coefficients = inv_sqrt[directed[:, 0]] * inv_sqrt[directed[:, 1]]
        messages = weighted[directed[:, 0]] * coefficients[:, None]
        aggregated = segment_sum(messages, directed[:, 1], adjacency.num_vertices)
        aggregated += weighted * (inv_sqrt**2)[:, None]

        reference = layer.forward(adjacency, graph.features)
        np.testing.assert_allclose(aggregated, reference, atol=1e-9)

    def test_gat_terms_computed_once_per_vertex_suffice(self, graph):
        """The blocked e_{i,1}/e_{i,2} terms reproduce the reference GAT layer
        when combined per edge — validating the O(|V|+|E|) reordering end to
        end."""
        config = AcceleratorConfig()
        layer = GATLayer(graph.feature_length, 12, activation="none", seed=5)
        weighted = weighting_functional(graph.features, layer.weight, config)
        center, neighbor = attention_terms_functional(
            weighted, layer.attention_left, layer.attention_right, config
        )
        adjacency = graph.adjacency
        edges = np.concatenate(
            [adjacency.edge_array(), np.stack([np.arange(graph.num_vertices)] * 2, axis=1)],
            axis=0,
        )
        scores = center[edges[:, 1]] + neighbor[edges[:, 0]]
        scores = np.where(scores > 0, scores, 0.2 * scores)  # LeakyReLU
        # Per-destination softmax + weighted sum (the edge-mapped computation).
        output = np.zeros_like(weighted)
        for vertex in range(graph.num_vertices):
            mask = edges[:, 1] == vertex
            exp_scores = np.exp(scores[mask] - scores[mask].max())
            alphas = exp_scores / exp_scores.sum()
            output[vertex] = (alphas[:, None] * weighted[edges[mask, 0]]).sum(axis=0)
        reference = layer.forward(adjacency, graph.features)
        np.testing.assert_allclose(output, reference, atol=1e-9)

    def test_aggregate_subgraph_iterations_cover_reference_sum(self, graph):
        """Splitting aggregation across arbitrary edge batches (as the cache
        controller does) yields the same totals as a single pass."""
        rng = np.random.default_rng(0)
        weighted = rng.normal(size=(graph.num_vertices, 8))
        undirected = graph.adjacency.edge_array()
        undirected = undirected[undirected[:, 0] < undirected[:, 1]]
        accumulator = np.zeros_like(weighted)
        # Process in three arbitrary chunks.
        for chunk in np.array_split(undirected, 3):
            AggregationCycleModel.aggregate_subgraph(weighted, chunk, accumulator)
        directed = graph.adjacency.edge_array()
        expected = segment_sum(weighted[directed[:, 0]], directed[:, 1], graph.num_vertices)
        np.testing.assert_allclose(accumulator, expected, atol=1e-9)


# --------------------------------------------------------------------------- #
# Robustness of the simulator on degenerate graph shapes
# --------------------------------------------------------------------------- #
def _graph_from_edges(edges, num_vertices, feature_length=24, num_labels=3, seed=0):
    adjacency = CSRGraph.from_edge_list(edges, num_vertices=num_vertices, symmetric=True)
    rng = np.random.default_rng(seed)
    features = np.where(
        rng.random((num_vertices, feature_length)) < 0.2,
        rng.random((num_vertices, feature_length)),
        0.0,
    )
    features[features.sum(axis=1) == 0, 0] = 1.0
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=rng.integers(num_labels, size=num_vertices),
        name="degenerate",
        num_label_classes=num_labels,
    )


class TestSimulatorRobustness:
    @pytest.mark.parametrize(
        "edges,num_vertices",
        [
            ([(0, i) for i in range(1, 16)], 16),  # star (extreme power law)
            ([(i, i + 1) for i in range(15)], 16),  # chain (minimum degrees)
            ([(0, 1)], 8),  # mostly isolated vertices
            ([(i, j) for i in range(8) for j in range(i + 1, 8)], 8),  # clique (dense)
        ],
    )
    @pytest.mark.parametrize("family", ["gcn", "gat"])
    def test_degenerate_topologies_simulate(self, edges, num_vertices, family):
        graph = _graph_from_edges(edges, num_vertices)
        result = GNNIESimulator().run(graph, family)
        assert result.total_cycles > 0
        assert np.isfinite(result.latency_seconds)
        assert result.energy_joules > 0

    def test_single_label_graph(self):
        graph = _graph_from_edges([(0, 1), (1, 2)], 4, num_labels=1)
        result = GNNIESimulator().run(graph, "gcn")
        assert result.layers[-1].out_features >= 2  # clamped to a sane minimum

    def test_tiny_buffer_configuration(self):
        graph = _graph_from_edges([(i, (i + 1) % 32) for i in range(32)], 32)
        config = AcceleratorConfig(input_buffer_bytes=1024, output_buffer_bytes=2048)
        result = GNNIESimulator(config).run(graph, "gcn")
        assert result.total_cycles > 0

    def test_export_of_every_family(self, tiny_graph):
        simulator = GNNIESimulator()
        for family in ("gcn", "gat", "graphsage", "ginconv", "diffpool"):
            report = result_to_dict(simulator.run(tiny_graph, family))
            assert report["total_cycles"] > 0
            assert report["layers"]


# --------------------------------------------------------------------------- #
# Cross-consistency between simulator outputs and analysis helpers
# --------------------------------------------------------------------------- #
class TestConsistency:
    def test_latency_equals_cycles_over_frequency(self, tiny_graph):
        result = GNNIESimulator().run(tiny_graph, "gcn")
        assert result.latency_seconds == pytest.approx(
            result.total_cycles / result.frequency_hz
        )

    def test_layer_cycles_sum_to_total(self, tiny_graph):
        result = GNNIESimulator().run(tiny_graph, "gat")
        assert result.total_cycles == sum(
            layer.total_cycles for layer in result.layers
        ) + result.global_preprocessing_cycles

    def test_energy_breakdown_sums_to_total(self, tiny_graph):
        result = GNNIESimulator().run(tiny_graph, "gcn")
        breakdown = result.energy.as_dict()
        component_sum = sum(
            value for key, value in breakdown.items() if key != "total_pj"
        )
        assert component_sum == pytest.approx(breakdown["total_pj"])

    def test_models_reference_and_simulator_agree_on_dimensions(self, tiny_graph):
        model = build_model("gcn", tiny_graph.feature_length, tiny_graph.num_label_classes)
        output = model.forward(tiny_graph.adjacency, tiny_graph.features)
        result = GNNIESimulator().run(tiny_graph, "gcn")
        assert output.shape[1] == result.layers[-1].out_features
