"""Shared fixtures for the test suite.

Heavy objects (synthetic datasets, cache simulations) are session-scoped so
the several hundred tests stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import build_dataset, tiny_dataset
from repro.graph import CSRGraph, Graph, power_law_graph
from repro.hw import AcceleratorConfig
from repro.sparse import generate_sparse_features


@pytest.fixture(scope="session")
def tiny_graph() -> Graph:
    """A 64-vertex power-law graph with sparse features."""
    return tiny_dataset(seed=3)


@pytest.fixture(scope="session")
def small_cora() -> Graph:
    """A scaled-down Cora stand-in (fast enough for unit tests)."""
    return build_dataset("cora", scale=0.25, seed=1)


@pytest.fixture(scope="session")
def medium_graph() -> Graph:
    """A ~500-vertex power-law graph used by cache/aggregation tests."""
    adjacency = power_law_graph(500, 2200, exponent=2.2, seed=11)
    features = generate_sparse_features(500, 96, 0.9, seed=5)
    rng = np.random.default_rng(7)
    return Graph(
        adjacency=adjacency,
        features=features,
        labels=rng.integers(5, size=500),
        name="medium",
        num_label_classes=5,
    )


@pytest.fixture(scope="session")
def default_config() -> AcceleratorConfig:
    return AcceleratorConfig()


@pytest.fixture()
def line_graph() -> CSRGraph:
    """A 6-vertex path graph: simple, hand-checkable adjacency."""
    edges = [(i, i + 1) for i in range(5)]
    return CSRGraph.from_edge_list(edges, num_vertices=6, symmetric=True)


@pytest.fixture()
def star_graph() -> CSRGraph:
    """A star with vertex 0 at the center of 7 leaves (power-law extreme)."""
    edges = [(0, i) for i in range(1, 8)]
    return CSRGraph.from_edge_list(edges, num_vertices=8, symmetric=True)
