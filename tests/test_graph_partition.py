"""Tests for vertex-set partitioning, buffer sizing and chip partitioning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    PARTITION_METHODS,
    partition_graph,
    sequential_vertex_sets,
    vertices_per_buffer,
)
from repro.graph.csr import CSRGraph


class TestVerticesPerBuffer:
    def test_basic_sizing(self):
        # 1 KB buffer, 100-element vectors at 1 byte plus 8 bytes of metadata.
        assert vertices_per_buffer(1024, 100) == 1024 // 108

    def test_at_least_one_vertex(self):
        assert vertices_per_buffer(16, 4096) == 1

    def test_larger_values_use_more_space(self):
        small = vertices_per_buffer(1 << 20, 128, bytes_per_value=1)
        large = vertices_per_buffer(1 << 20, 128, bytes_per_value=4)
        assert small > large

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            vertices_per_buffer(0, 128)
        with pytest.raises(ValueError):
            vertices_per_buffer(1024, 0)


class TestSequentialVertexSets:
    def test_covers_all_vertices_once(self):
        sets = list(sequential_vertex_sets(10, 3))
        seen = [vertex for vertex_set in sets for vertex in vertex_set.vertex_ids]
        assert seen == list(range(10))
        assert [s.size for s in sets] == [3, 3, 3, 1]

    def test_exact_division(self):
        sets = list(sequential_vertex_sets(9, 3))
        assert len(sets) == 3
        assert all(s.size == 3 for s in sets)

    def test_empty_graph(self):
        assert list(sequential_vertex_sets(0, 4)) == []

    def test_indices_are_sequential(self):
        sets = list(sequential_vertex_sets(7, 2))
        assert [s.index for s in sets] == [0, 1, 2, 3]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            list(sequential_vertex_sets(-1, 3))
        with pytest.raises(ValueError):
            list(sequential_vertex_sets(5, 0))


def _ring(num_vertices: int) -> CSRGraph:
    """Undirected ring: vertex v neighbors (v-1) % V and (v+1) % V."""
    edges = []
    for v in range(num_vertices):
        edges.append((v, (v + 1) % num_vertices))
        edges.append((v, (v - 1) % num_vertices))
    return CSRGraph.from_edge_list(edges, num_vertices)


class TestPartitionGraph:
    def test_covers_all_vertices_once(self):
        partition = partition_graph(_ring(10), 3)
        covered = np.sort(np.concatenate(partition.parts))
        assert covered.tolist() == list(range(10))
        assert partition.part_sizes() == (4, 3, 3)

    def test_single_part_has_no_cut(self):
        partition = partition_graph(_ring(8), 1)
        assert partition.cut_edges == 0
        assert partition.halo_counts == (0,)
        assert partition.imbalance() == 1.0

    def test_more_parts_than_vertices_leaves_empty_parts(self):
        partition = partition_graph(_ring(3), 8)
        assert partition.num_parts == 8
        assert sum(partition.part_sizes()) == 3
        assert partition.part_sizes().count(0) == 5
        # Empty parts have no owned vertices, hence no halo.
        for part, size in enumerate(partition.part_sizes()):
            if size == 0:
                assert partition.halo_counts[part] == 0

    def test_isolated_vertices_contribute_no_halo(self):
        # 4 isolated vertices: no edges at all, so nothing crosses the cut.
        graph = CSRGraph(indptr=np.zeros(5, dtype=np.int64), indices=np.array([], dtype=np.int64))
        partition = partition_graph(graph, 2)
        assert partition.cut_edges == 0
        assert partition.halo_counts == (0, 0)
        assert sum(partition.part_sizes()) == 4

    def test_self_loops_are_never_cut(self):
        # Two vertices, each with only a self-loop, split onto two chips.
        graph = CSRGraph.from_edge_list([(0, 0), (1, 1)], 2)
        partition = partition_graph(graph, 2)
        assert partition.part_sizes() == (1, 1)
        assert partition.cut_edges == 0
        assert partition.halo_counts == (0, 0)

    def test_ring_cut_statistics(self):
        # A 6-ring chunked into two halves cuts the two boundary edges, in
        # both stored directions: 4 directed cut edges, 2 halo vertices/part.
        partition = partition_graph(_ring(6), 2)
        assert partition.cut_edges == 4
        assert partition.halo_counts == (2, 2)
        assert partition.total_halo_vertices() == 4

    def test_balanced_spreads_degree(self):
        # A star graph: hub 0 has degree 8; chunk puts the hub plus half the
        # leaves on part 0, balanced gives the hub its own part.
        edges = []
        for leaf in range(1, 9):
            edges.append((0, leaf))
            edges.append((leaf, 0))
        graph = CSRGraph.from_edge_list(edges, 9)
        chunk = partition_graph(graph, 2, method="chunk")
        balanced = partition_graph(graph, 2, method="balanced")
        degrees = graph.degrees()
        chunk_loads = [int(degrees[part].sum()) for part in chunk.parts]
        balanced_loads = [int(degrees[part].sum()) for part in balanced.parts]
        assert max(balanced_loads) <= max(chunk_loads)

    def test_methods_are_deterministic(self):
        graph = _ring(17)
        for method in PARTITION_METHODS:
            first = partition_graph(graph, 4, method=method)
            second = partition_graph(graph, 4, method=method)
            assert np.array_equal(first.assignments, second.assignments)
            assert first.cut_edges == second.cut_edges
            assert first.halo_counts == second.halo_counts

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_graph(_ring(4), 0)
        with pytest.raises(ValueError):
            partition_graph(_ring(4), 2, method="metis")


@settings(max_examples=30, deadline=None)
@given(
    num_vertices=st.integers(min_value=1, max_value=60),
    num_parts=st.integers(min_value=1, max_value=12),
    method=st.sampled_from(PARTITION_METHODS),
)
def test_partition_graph_property(num_vertices, num_parts, method):
    graph = _ring(num_vertices)
    partition = partition_graph(graph, num_parts, method=method)
    covered = np.sort(np.concatenate(partition.parts))
    assert covered.tolist() == list(range(num_vertices))
    assert all(
        np.all(partition.assignments[part] == index)
        for index, part in enumerate(partition.parts)
    )
    # Halo of a part can never exceed the number of remote vertices.
    for part, halo in zip(partition.parts, partition.halo_counts):
        assert 0 <= halo <= num_vertices - part.size


@settings(max_examples=50, deadline=None)
@given(
    num_vertices=st.integers(min_value=0, max_value=500),
    set_size=st.integers(min_value=1, max_value=64),
)
def test_partition_property(num_vertices, set_size):
    sets = list(sequential_vertex_sets(num_vertices, set_size))
    covered = [vertex for vertex_set in sets for vertex in vertex_set.vertex_ids]
    assert covered == list(range(num_vertices))
    assert all(vertex_set.size <= set_size for vertex_set in sets)
    expected_sets = -(-num_vertices // set_size) if num_vertices else 0
    assert len(sets) == expected_sets
