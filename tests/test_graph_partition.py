"""Tests for vertex-set partitioning and buffer sizing helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import sequential_vertex_sets, vertices_per_buffer


class TestVerticesPerBuffer:
    def test_basic_sizing(self):
        # 1 KB buffer, 100-element vectors at 1 byte plus 8 bytes of metadata.
        assert vertices_per_buffer(1024, 100) == 1024 // 108

    def test_at_least_one_vertex(self):
        assert vertices_per_buffer(16, 4096) == 1

    def test_larger_values_use_more_space(self):
        small = vertices_per_buffer(1 << 20, 128, bytes_per_value=1)
        large = vertices_per_buffer(1 << 20, 128, bytes_per_value=4)
        assert small > large

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            vertices_per_buffer(0, 128)
        with pytest.raises(ValueError):
            vertices_per_buffer(1024, 0)


class TestSequentialVertexSets:
    def test_covers_all_vertices_once(self):
        sets = list(sequential_vertex_sets(10, 3))
        seen = [vertex for vertex_set in sets for vertex in vertex_set.vertex_ids]
        assert seen == list(range(10))
        assert [s.size for s in sets] == [3, 3, 3, 1]

    def test_exact_division(self):
        sets = list(sequential_vertex_sets(9, 3))
        assert len(sets) == 3
        assert all(s.size == 3 for s in sets)

    def test_empty_graph(self):
        assert list(sequential_vertex_sets(0, 4)) == []

    def test_indices_are_sequential(self):
        sets = list(sequential_vertex_sets(7, 2))
        assert [s.index for s in sets] == [0, 1, 2, 3]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            list(sequential_vertex_sets(-1, 3))
        with pytest.raises(ValueError):
            list(sequential_vertex_sets(5, 0))


@settings(max_examples=50, deadline=None)
@given(
    num_vertices=st.integers(min_value=0, max_value=500),
    set_size=st.integers(min_value=1, max_value=64),
)
def test_partition_property(num_vertices, set_size):
    sets = list(sequential_vertex_sets(num_vertices, set_size))
    covered = [vertex for vertex_set in sets for vertex in vertex_set.vertex_ids]
    assert covered == list(range(num_vertices))
    assert all(vertex_set.size <= set_size for vertex_set in sets)
    expected_sets = -(-num_vertices // set_size) if num_vertices else 0
    assert len(sets) == expected_sets
