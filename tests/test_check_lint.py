"""The determinism linter: each rule flags its minimal offending snippet.

One test per rule with a minimal snippet the rule must flag, the matching
clean snippet it must not flag, suppression-comment behavior, and the
repo-wide gate: ``src/repro`` lints clean (zero findings), which is what
lets the committed baseline stay empty.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.check import (
    filter_findings,
    lint_paths,
    lint_rules,
    lint_source,
    load_baseline,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _rules_hit(source: str) -> set[str]:
    return {finding.rule for finding in lint_source(source)}


# --------------------------------------------------------------------- #
# D101: unseeded global RNG
# --------------------------------------------------------------------- #

def test_d101_flags_global_random():
    assert "D101" in _rules_hit("import random\nx = random.random()\n")
    assert "D101" in _rules_hit("import random\nrandom.shuffle(items)\n")


def test_d101_flags_legacy_np_random():
    assert "D101" in _rules_hit("import numpy as np\nx = np.random.rand(3)\n")
    assert "D101" in _rules_hit("import numpy\nx = numpy.random.randint(10)\n")


def test_d101_allows_seeded_generators():
    clean = (
        "import random\nimport numpy as np\n"
        "rng = random.Random(7)\n"
        "gen = np.random.default_rng(7)\n"
        "x = rng.random()\ny = gen.integers(10)\n"
    )
    assert "D101" not in _rules_hit(clean)


# --------------------------------------------------------------------- #
# D102: wall clock
# --------------------------------------------------------------------- #

def test_d102_flags_wall_clock():
    assert "D102" in _rules_hit("import time\nstamp = time.time()\n")
    assert "D102" in _rules_hit(
        "from datetime import datetime\nnow = datetime.now()\n"
    )
    assert "D102" in _rules_hit(
        "import datetime\nnow = datetime.datetime.utcnow()\n"
    )


def test_d102_allows_monotonic_clocks():
    clean = "import time\nstart = time.perf_counter()\nelapsed = time.monotonic()\n"
    assert "D102" not in _rules_hit(clean)


# --------------------------------------------------------------------- #
# D103: id()-derived keys
# --------------------------------------------------------------------- #

def test_d103_flags_id_keys():
    assert "D103" in _rules_hit("memo = {}\nmemo[id(graph)] = value\n")
    assert "D103" in _rules_hit("key = id(adjacency)\n")


def test_d103_suppression_comment():
    suppressed = "key = id(graph)  # repro-check: disable=D103 (weakref-guarded)\n"
    assert "D103" not in _rules_hit(suppressed)


# --------------------------------------------------------------------- #
# D104: canonical JSON in store paths
# --------------------------------------------------------------------- #

def test_d104_flags_unsorted_dumps_in_store_paths():
    source = "import json\nline = json.dumps(row)\n"
    findings = lint_source(source, "src/repro/sweep/store.py")
    assert "D104" in {finding.rule for finding in findings}


def test_d104_requires_literal_true():
    source = "import json\nline = json.dumps(row, sort_keys=flag)\n"
    findings = lint_source(source, "src/repro/sweep/worker.py")
    assert "D104" in {finding.rule for finding in findings}


def test_d104_accepts_sorted_dumps():
    source = "import json\nline = json.dumps(row, sort_keys=True)\n"
    findings = lint_source(source, "src/repro/sweep/store.py")
    assert "D104" not in {finding.rule for finding in findings}


def test_d104_scoped_to_store_row_modules():
    source = "import json\nline = json.dumps(row)\n"
    findings = lint_source(source, "src/repro/cli.py")
    assert "D104" not in {finding.rule for finding in findings}


# --------------------------------------------------------------------- #
# D105: unordered-set iteration
# --------------------------------------------------------------------- #

def test_d105_flags_set_iteration():
    assert "D105" in _rules_hit("for item in {1, 2, 3}:\n    pass\n")
    assert "D105" in _rules_hit("rows = [f(x) for x in set(items)]\n")


def test_d105_allows_sorted_iteration():
    assert "D105" not in _rules_hit("for item in sorted({1, 2, 3}):\n    pass\n")


# --------------------------------------------------------------------- #
# D106: mutable default arguments
# --------------------------------------------------------------------- #

def test_d106_flags_mutable_defaults():
    assert "D106" in _rules_hit("def f(items=[]):\n    return items\n")
    assert "D106" in _rules_hit("def f(*, memo=dict()):\n    return memo\n")


def test_d106_allows_none_default():
    assert "D106" not in _rules_hit("def f(items=None):\n    return items or []\n")


# --------------------------------------------------------------------- #
# Suppressions, selection, and machinery
# --------------------------------------------------------------------- #

def test_disable_all_suppresses_every_rule():
    source = "x = id(graph) or random.random()  # repro-check: disable=all\n"
    assert _rules_hit("import random\n" + source) == set()


def test_disable_list_suppresses_only_named_rules():
    source = (
        "import random\n"
        "x = {id(graph): random.random()}  # repro-check: disable=D103\n"
    )
    assert _rules_hit(source) == {"D101"}


def test_syntax_error_reports_d100():
    findings = lint_source("def broken(:\n")
    assert [finding.rule for finding in findings] == ["D100"]


def test_unknown_rule_selection_raises():
    with pytest.raises(KeyError, match="unknown lint rule"):
        lint_source("x = 1\n", rules=["D999"])


def test_every_rule_has_id_and_contract():
    rules = lint_rules()
    assert set(rules) == {"D101", "D102", "D103", "D104", "D105", "D106"}
    for rule in rules.values():
        assert rule.contract
        assert rule.check.__doc__ and rule.check.__doc__.strip()


def test_findings_sorted_and_addressable(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "import random\nb = random.random()\na = id(b)\n", encoding="utf-8"
    )
    findings = lint_paths([tmp_path], root=tmp_path)
    assert [finding.line for finding in findings] == [2, 3]
    assert findings[0].path == "mod.py"
    assert findings[0].key() == ("mod.py", "D101", 2)


# --------------------------------------------------------------------- #
# Baseline round-trip
# --------------------------------------------------------------------- #

def test_baseline_roundtrip_filters_known_findings(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text("key = id(graph)\n", encoding="utf-8")
    findings = lint_paths([tmp_path], root=tmp_path)
    assert len(findings) == 1

    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings, baseline_path)
    baseline = load_baseline(baseline_path)
    assert filter_findings(findings, baseline) == []

    # A new finding on another line is not masked by the baseline.
    module.write_text("key = id(graph)\nother = id(plan)\n", encoding="utf-8")
    updated = lint_paths([tmp_path], root=tmp_path)
    fresh = filter_findings(updated, baseline)
    assert [finding.line for finding in fresh] == [2]


def test_write_baseline_is_byte_deterministic(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text("key = id(graph)\n", encoding="utf-8")
    findings = lint_paths([tmp_path], root=tmp_path)
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    write_baseline(findings, first)
    write_baseline(list(reversed(findings)), second)
    assert first.read_bytes() == second.read_bytes()


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == set()


# --------------------------------------------------------------------- #
# The repo-wide gate
# --------------------------------------------------------------------- #

def test_src_repro_lints_clean():
    """The whole tree lints clean — this is what keeps the baseline empty."""
    findings = lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
    assert findings == [], [finding.describe() for finding in findings]


def test_committed_baseline_is_empty():
    baseline_path = REPO_ROOT / "repro-check-baseline.json"
    assert baseline_path.exists()
    assert load_baseline(baseline_path) == set()
