"""Adversity tests for the self-healing result store and the repair tools."""

from __future__ import annotations

import json

import pytest

from repro.faults import ENV_VAR, FaultPlan, FaultSpec, clear_plan, install_plan
from repro.sweep import (
    ResultStore,
    ScenarioMatrix,
    StoreCorruptionWarning,
    compact_store,
    repair_store,
    run_sweep,
    verify_store,
)
from repro.sweep.store import armored_line, canonical_row, row_checksum


@pytest.fixture(autouse=True)
def _no_ambient_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    yield
    clear_plan()


def _write_rows(path, rows):
    path.write_text("".join(armored_line(row) + "\n" for row in rows))


class TestChecksums:
    def test_armor_is_stripped_at_load(self, tmp_path):
        """Logical rows never carry the checksum field: bytes handed to
        consumers match stores written before checksums existed."""
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append({"key": "a", "value": 1})
        assert '"crc":' in path.read_text()
        reloaded = ResultStore(path)
        assert reloaded.get("a") == {"key": "a", "value": 1}

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        """A bit-flipped row fails its CRC and is quarantined, not served."""
        path = tmp_path / "s.jsonl"
        good = {"key": "a", "value": 1}
        tampered = canonical_row({"key": "a", "value": 2, "crc": row_checksum(good)})
        path.write_text(tampered + "\n" + armored_line({"key": "b"}) + "\n")
        with pytest.warns(StoreCorruptionWarning, match="quarantined 1"):
            store = ResultStore(path)
        assert store.keys() == {"b"}
        assert "checksum mismatch" in store.quarantined[0].error

    def test_legacy_store_without_checksums_loads_silently(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text(canonical_row({"key": "a", "value": 1}) + "\n")
        store = ResultStore(path)  # no warning expected
        assert store.get("a") == {"key": "a", "value": 1}
        report = verify_store(path)
        assert report.clean and report.unchecksummed_rows == 1

    def test_compact_migrates_legacy_rows_to_armor(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text(canonical_row({"key": "a", "value": 1}) + "\n")
        compact_store(path)
        assert verify_store(path).unchecksummed_rows == 0
        assert ResultStore(path).get("a") == {"key": "a", "value": 1}


class TestTornWrites:
    def test_torn_tail_is_truncated_and_reappendable(self, tmp_path):
        path = tmp_path / "s.jsonl"
        _write_rows(path, [{"key": "a"}])
        whole = armored_line({"key": "b"})
        with path.open("a") as handle:
            handle.write(whole[: len(whole) // 2])  # killed mid-write
        store = ResultStore(path)
        assert store.dropped_partial_row and store.keys() == {"a"}
        store.append({"key": "b", "value": 2})
        reloaded = ResultStore(path)
        assert not reloaded.dropped_partial_row
        assert reloaded.get("b") == {"key": "b", "value": 2}

    def test_injected_torn_write_fault(self, tmp_path):
        """A torn_write fault tears exactly one append; the store neither
        indexes the torn row nor serves it, and the retry lands it whole."""
        path = tmp_path / "s.jsonl"
        install_plan(
            FaultPlan(specs=(FaultSpec(site="store.append", kind="torn_write",
                                       match={"key": "victim"}, times=1),))
        )
        store = ResultStore(path)
        store.append({"key": "other"})
        store.append({"key": "victim", "value": 9})
        assert store.get("victim") is None  # torn write did not land
        raw = path.read_text()
        assert not raw.endswith("\n")  # torn prefix dangles
        store.append({"key": "victim", "value": 9})  # attempt 2: fault quiet
        # The dangling prefix plus the retried append is exactly the torn-
        # tail adversity: the loader glues them into one damaged line,
        # quarantines it, and the store heals on the next append.
        with pytest.warns(StoreCorruptionWarning):
            reloaded = ResultStore(path)
        assert reloaded.get("other") == {"key": "other"}
        repair_store(path)
        clear_plan()  # the chaos is over; heal in a fresh store instance
        healed = ResultStore(path)
        healed.append({"key": "victim", "value": 9})
        assert ResultStore(path).get("victim") == {"key": "victim", "value": 9}


class TestRepair:
    def test_repair_round_trip_preserves_healthy_bytes(self, tmp_path):
        path = tmp_path / "s.jsonl"
        healthy = [armored_line({"key": "a"}), armored_line({"key": "b"})]
        path.write_text(healthy[0] + "\n" + "garbage\n" + healthy[1] + "\n" + '{"torn')
        report = repair_store(path)
        assert not report.clean  # report describes what it found
        assert report.removed_lines == 2  # the garbage line and the torn tail
        assert path.read_text() == healthy[0] + "\n" + healthy[1] + "\n"
        assert (tmp_path / "s.jsonl.quarantine").read_text() == "garbage\n"
        assert verify_store(path).clean
        assert repair_store(path).clean  # idempotent: nothing left to do

    def test_compact_collapses_failed_then_healed_pairs(self, tmp_path):
        path = tmp_path / "s.jsonl"
        failed = {"key": "a", "status": "failed", "attempts": 2}
        healed = {"key": "a", "value": 1}
        _write_rows(path, [failed, healed, {"key": "b"}])
        assert verify_store(path).duplicate_keys == 1
        report = compact_store(path)
        assert report.rows == 2 and report.removed_lines == 1
        lines = path.read_text().splitlines()
        assert lines == [armored_line(healed), armored_line({"key": "b"})]


class TestChaosResume:
    def test_resume_after_torn_sweep_is_byte_identical(self, tmp_path):
        """Kill a sweep mid-row (simulated by truncating the store), resume
        fault-free: the final store matches an uninterrupted run's bytes."""
        matrix = ScenarioMatrix.build(
            ["cora"], ["gcn"], backends=["gnnie", "pyg-cpu"], scale=0.1, seed=0
        )
        clean = tmp_path / "clean.jsonl"
        run_sweep(matrix, store=ResultStore(clean), jobs=1)

        torn = tmp_path / "torn.jsonl"
        run_sweep(matrix, store=ResultStore(torn), jobs=1)
        raw = torn.read_bytes()
        torn.write_bytes(raw[: len(raw) - len(raw.splitlines(True)[-1]) // 2 - 1])
        store = ResultStore(torn)
        assert store.dropped_partial_row
        summary = run_sweep(matrix, store=store, jobs=1)
        assert summary.executed == 1  # only the torn cell re-ran
        assert sorted(torn.read_text().splitlines()) == sorted(
            clean.read_text().splitlines()
        )

    def test_quarantined_cells_reexecute_and_store_repairs_clean(self, tmp_path):
        """Interior corruption -> quarantine -> re-execute -> repair: the
        store ends exactly one healthy row per cell."""
        matrix = ScenarioMatrix.build(
            ["cora"], ["gcn"], backends=["gnnie", "pyg-cpu"], scale=0.1, seed=0
        )
        path = tmp_path / "store.jsonl"
        run_sweep(matrix, store=ResultStore(path), jobs=1)
        lines = path.read_text().splitlines()
        # Corrupt the first row in place (flip bytes mid-line).
        lines[0] = lines[0][:-4] + "!!!!"
        path.write_text("\n".join(lines) + "\n")

        with pytest.warns(StoreCorruptionWarning):
            store = ResultStore(path)
        summary = run_sweep(matrix, store=store, jobs=1)
        assert summary.executed == 1 and summary.failed == 0
        repair_store(path)
        report = verify_store(path)
        assert report.clean and report.rows == len(matrix.cells())
        for row in ResultStore(path).rows():
            assert row["metrics"] is not None

    def test_verify_reports_failed_rows(self, tmp_path):
        from repro.sweep import failed_row

        matrix = ScenarioMatrix.build(["cora"], ["gcn"], backends=["gnnie"], scale=0.1)
        cell = matrix.cells()[0]
        path = tmp_path / "s.jsonl"
        _write_rows(path, [failed_row(cell, RuntimeError("boom"), 3)])
        report = verify_store(path)
        assert report.rows == 1 and report.failed_rows == 1
        data = json.loads(path.read_text().splitlines()[0])
        assert data["status"] == "failed" and data["attempts"] == 3
