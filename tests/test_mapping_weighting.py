"""Tests for the Weighting schedule and its functional mirror."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import AcceleratorConfig
from repro.mapping import schedule_weighting, weighting_functional
from repro.sparse import generate_sparse_features


@pytest.fixture(scope="module")
def features():
    return generate_sparse_features(300, 200, 0.93, seed=9, column_skew=1.0)


class TestScheduleWeighting:
    def test_block_size_and_pass_count(self, features):
        config = AcceleratorConfig()
        schedule = schedule_weighting(features, out_features=128, config=config)
        assert schedule.block_size == -(-200 // 16)
        assert schedule.num_passes == 8
        assert schedule.num_blocks <= config.num_rows

    def test_mac_counts(self, features):
        schedule = schedule_weighting(features, 64, AcceleratorConfig())
        assert schedule.total_nonzero_macs == np.count_nonzero(features) * 64
        assert schedule.total_dense_macs >= features.size * 64

    def test_compute_cycles_are_pass_times_max_row(self, features):
        schedule = schedule_weighting(features, 128, AcceleratorConfig())
        assert schedule.compute_cycles == schedule.num_passes * schedule.cycles_per_pass
        assert schedule.cycles_per_pass == schedule.row_cycles_per_pass.max()

    def test_flexible_mac_beats_disabled(self, features):
        config = AcceleratorConfig()
        baseline_cfg = replace(
            config,
            macs_per_group=(4,),
            rows_per_group=(16,),
            enable_flexible_mac=False,
            enable_load_redistribution=False,
        )
        fm = schedule_weighting(features, 128, config)
        base = schedule_weighting(features, 128, baseline_cfg)
        assert fm.compute_cycles < base.compute_cycles

    def test_zero_skipping_toggle(self, features):
        config = AcceleratorConfig()
        dense_cfg = replace(config, enable_zero_skipping=False)
        sparse_schedule = schedule_weighting(features, 64, config)
        dense_schedule = schedule_weighting(features, 64, dense_cfg)
        assert dense_schedule.compute_cycles > sparse_schedule.compute_cycles

    def test_load_redistribution_applied_when_enabled(self, features):
        config = AcceleratorConfig()
        schedule = schedule_weighting(features, 64, config)
        assert schedule.load_redistribution is not None
        no_lr = schedule_weighting(
            features, 64, replace(config, enable_load_redistribution=False)
        )
        assert no_lr.load_redistribution is None
        assert schedule.cycles_per_pass <= no_lr.cycles_per_pass

    def test_statistical_block_nonzeros_path(self):
        config = AcceleratorConfig()
        blocks = np.full((100, 8), 6, dtype=np.int64)
        schedule = schedule_weighting(
            None, 32, config, block_nonzeros=blocks, in_features=64
        )
        assert schedule.total_nonzero_macs == blocks.sum() * 32
        assert schedule.block_size == 4

    def test_missing_inputs_rejected(self):
        config = AcceleratorConfig()
        with pytest.raises(ValueError):
            schedule_weighting(None, 32, config)
        with pytest.raises(ValueError):
            schedule_weighting(None, 32, config, block_nonzeros=np.ones((4, 4)))
        with pytest.raises(ValueError):
            schedule_weighting(np.ones((4, 4)), 0, config)

    def test_average_row_utilization_bounded(self, features):
        schedule = schedule_weighting(features, 64, AcceleratorConfig())
        assert 0.0 < schedule.average_row_utilization <= 1.0


class TestWeightingFunctional:
    def test_matches_dense_matmul(self, features):
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(features.shape[1], 48))
        config = AcceleratorConfig()
        np.testing.assert_allclose(
            weighting_functional(features, weight, config), features @ weight, atol=1e-9
        )

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighting_functional(np.ones((4, 5)), np.ones((6, 2)), AcceleratorConfig())

    @settings(max_examples=20, deadline=None)
    @given(
        vertices=st.integers(min_value=1, max_value=40),
        in_features=st.integers(min_value=1, max_value=64),
        out_features=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_blocked_equals_dense_property(self, vertices, in_features, out_features, seed):
        """The blocked weight-stationary mapping touches every nonzero exactly
        once: its result equals the dense GEMM for any shape."""
        rng = np.random.default_rng(seed)
        features = np.where(
            rng.random((vertices, in_features)) < 0.3, rng.normal(size=(vertices, in_features)), 0.0
        )
        weight = rng.normal(size=(in_features, out_features))
        config = AcceleratorConfig()
        np.testing.assert_allclose(
            weighting_functional(features, weight, config), features @ weight, atol=1e-8
        )
