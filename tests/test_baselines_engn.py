"""Tests for the EnGN baseline cost model."""

from __future__ import annotations

import pytest

from repro.baselines import EnGNModel, HyGCNModel, PyGCPUModel, estimate_workload
from repro.sim import GNNIESimulator


class TestEnGNModel:
    @pytest.fixture(scope="class")
    def engn(self):
        return EnGNModel()

    def test_supported_families(self, engn):
        assert engn.supports("gcn") and engn.supports("ginconv")
        assert not engn.supports("gat")
        assert not engn.supports("diffpool")

    def test_rejects_gat(self, engn, tiny_graph):
        with pytest.raises(ValueError):
            engn.evaluate(tiny_graph, estimate_workload(tiny_graph, "gat"))

    def test_latency_and_energy_positive(self, engn, small_cora):
        result = engn.evaluate(small_cora, estimate_workload(small_cora, "gcn"))
        assert result.latency_seconds > 0
        assert result.energy_joules > 0
        assert result.platform == "EnGN"

    def test_faster_than_cpu(self, engn, small_cora):
        workload = estimate_workload(small_cora, "gcn")
        cpu = PyGCPUModel().evaluate(small_cora, workload)
        assert engn.evaluate(small_cora, workload).latency_seconds < cpu.latency_seconds

    def test_ring_overhead_costs_cycles(self, small_cora):
        workload = estimate_workload(small_cora, "gcn")
        with_ring = EnGNModel(ring_overhead_factor=0.5)
        without_ring = EnGNModel(ring_overhead_factor=0.0, reorder_seconds_per_edge=0.0)
        assert (
            with_ring.latency_seconds(small_cora, workload)
            > without_ring.latency_seconds(small_cora, workload)
        )

    def test_reordering_preprocessing_charged(self, small_cora):
        workload = estimate_workload(small_cora, "gcn")
        cheap = EnGNModel(reorder_seconds_per_edge=0.0)
        expensive = EnGNModel(reorder_seconds_per_edge=1e-7)
        assert expensive.latency_seconds(small_cora, workload) > cheap.latency_seconds(
            small_cora, workload
        )

    def test_gnnie_faster_than_engn(self, engn, small_cora):
        gnnie = GNNIESimulator().run(small_cora, "gcn")
        baseline = engn.evaluate(small_cora, estimate_workload(small_cora, "gcn"))
        assert baseline.latency_seconds / gnnie.latency_seconds > 1.5

    def test_engn_competitive_with_hygcn(self, engn, small_cora):
        """EnGN exploits input sparsity, so it should not be dramatically
        slower than HyGCN on the sparse citation workloads."""
        workload = estimate_workload(small_cora, "gcn")
        engn_latency = engn.evaluate(small_cora, workload).latency_seconds
        hygcn_latency = HyGCNModel().evaluate(small_cora, workload).latency_seconds
        assert engn_latency < 5 * hygcn_latency
