"""Tests for the dataset registry and synthetic dataset builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DATASET_SPECS,
    build_dataset,
    dataset_names,
    dataset_spec,
    tiny_dataset,
)


class TestRegistry:
    def test_all_five_paper_datasets_registered(self):
        assert set(dataset_names()) == {"cora", "citeseer", "pubmed", "ppi", "reddit"}

    def test_lookup_by_name_and_abbreviation(self):
        assert dataset_spec("cora").abbreviation == "CR"
        assert dataset_spec("CS").name == "Citeseer"
        assert dataset_spec("Pubmed").num_vertices == 19717

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset_spec("imagenet")

    def test_table2_published_statistics(self):
        """Registry entries must carry the exact Table II numbers."""
        spec = dataset_spec("cora")
        assert (spec.num_vertices, spec.num_edges, spec.feature_length, spec.num_labels) == (
            2708,
            10556,
            1433,
            7,
        )
        spec = dataset_spec("citeseer")
        assert (spec.num_vertices, spec.num_edges, spec.feature_length, spec.num_labels) == (
            3327,
            9104,
            3703,
            6,
        )
        spec = dataset_spec("pubmed")
        assert (spec.num_vertices, spec.num_edges, spec.feature_length, spec.num_labels) == (
            19717,
            88648,
            500,
            3,
        )
        assert dataset_spec("ppi").num_labels == 121
        assert dataset_spec("reddit").num_vertices == 232_965

    def test_feature_sparsity_values(self):
        assert dataset_spec("cora").feature_sparsity == pytest.approx(0.9873)
        assert dataset_spec("reddit").feature_sparsity == pytest.approx(0.484)

    def test_average_degree(self):
        assert dataset_spec("cora").average_degree == pytest.approx(2 * 10556 / 2708)

    def test_scaled_spec(self):
        scaled = dataset_spec("ppi").scaled(0.1)
        assert scaled.is_scaled
        assert scaled.num_vertices == pytest.approx(5694, rel=0.01)
        with pytest.raises(ValueError):
            dataset_spec("ppi").scaled(0.0)
        with pytest.raises(ValueError):
            dataset_spec("ppi").scaled(2.0)

    def test_scaled_density_cap(self):
        scaled = dataset_spec("reddit").scaled(0.02)
        density = 2 * scaled.num_edges / (scaled.num_vertices**2)
        assert density <= 0.11

    def test_large_datasets_default_to_scaled(self):
        assert dataset_spec("reddit").default_scale < 1.0
        assert dataset_spec("ppi").default_scale < 1.0
        assert dataset_spec("cora").default_scale == 1.0


class TestScaledEdgeCases:
    """Boundary behaviour of DatasetSpec.scaled and registry lookup."""

    def test_scale_exactly_one_keeps_published_counts(self):
        spec = dataset_spec("cora")
        scaled = spec.scaled(1.0)
        assert (scaled.num_vertices, scaled.num_edges) == (
            spec.num_vertices,
            spec.num_edges,
        )
        assert not scaled.is_scaled and scaled.scale == 1.0

    def test_scale_just_outside_bounds_rejected(self):
        spec = dataset_spec("cora")
        for bad in (0.0, -0.1, 1.0 + 1e-9, 2.0):
            with pytest.raises(ValueError, match=r"\(0, 1\]"):
                spec.scaled(bad)

    def test_scale_just_inside_bounds_accepted(self):
        spec = dataset_spec("cora")
        assert spec.scaled(1.0 - 1e-9).is_scaled
        tiny = spec.scaled(1e-9)
        # The vertex floor keeps degenerate scales simulable.
        assert tiny.num_vertices == 64
        assert tiny.num_edges >= tiny.num_vertices

    def test_density_cap_binds_on_tiny_reddit_scales(self):
        """Reddit's edge count collapses onto the 5% adjacency-density cap."""
        scaled = dataset_spec("reddit").scaled(0.002)
        cap = int(0.05 * scaled.num_vertices * scaled.num_vertices / 2)
        assert scaled.num_edges == cap
        # Without the cap the naive scaled edge count would be far larger.
        assert int(round(114_600_000 * 0.002)) > cap

    def test_density_cap_never_undercuts_vertex_floor(self):
        """At the 64-vertex floor the cap stays above num_vertices edges."""
        scaled = dataset_spec("reddit").scaled(1e-6)
        assert scaled.num_vertices == 64
        assert scaled.num_edges >= scaled.num_vertices
        density = 2 * scaled.num_edges / scaled.num_vertices**2
        assert density <= 0.05 + 1e-9

    def test_cap_inactive_for_sparse_citation_graphs(self):
        spec = dataset_spec("pubmed")
        scaled = spec.scaled(0.5)
        assert scaled.num_edges == int(round(spec.num_edges * 0.5))

    def test_lookup_by_canonical_name(self):
        assert dataset_spec("ppi").abbreviation == "PPI"
        assert dataset_spec("reddit").name == "Reddit"

    def test_lookup_by_abbreviation_any_case(self):
        assert dataset_spec("rd").name == "Reddit"
        assert dataset_spec("Rd").name == "Reddit"
        assert dataset_spec("pb").name == "Pubmed"

    def test_lookup_by_full_name_mixed_case(self):
        assert dataset_spec("CoRa").abbreviation == "CR"
        assert dataset_spec("ReDdIt").abbreviation == "RD"
        assert dataset_spec("Protein-Protein Interaction").abbreviation == "PPI"

    def test_lookup_strips_whitespace(self):
        assert dataset_spec("  cora  ").abbreviation == "CR"

    def test_lookup_unknown_reports_known_names(self):
        with pytest.raises(KeyError, match="known"):
            dataset_spec("ogbn-arxiv")


class TestBuildDataset:
    @pytest.fixture(scope="class")
    def cora(self):
        return build_dataset("cora", seed=0)

    def test_cora_matches_spec(self, cora):
        spec = dataset_spec("cora")
        assert cora.num_vertices == spec.num_vertices
        assert cora.feature_length == spec.feature_length
        assert cora.num_label_classes == spec.num_labels
        undirected_edges = cora.num_edges / 2
        assert undirected_edges == pytest.approx(spec.num_edges, rel=0.3)
        assert cora.feature_sparsity() == pytest.approx(spec.feature_sparsity, abs=0.02)

    def test_cora_degree_cap(self, cora):
        assert cora.adjacency.max_degree() <= 2 * dataset_spec("cora").max_degree

    def test_cora_labels_valid(self, cora):
        assert cora.labels.min() >= 0
        assert cora.labels.max() < 7

    def test_label_homophily(self, cora):
        """Neighbors agree on labels more often than random chance."""
        edges = cora.adjacency.edge_array()
        agreement = np.mean(cora.labels[edges[:, 0]] == cora.labels[edges[:, 1]])
        assert agreement > 1.0 / 7 + 0.05

    def test_scaled_build(self):
        graph = build_dataset("pubmed", scale=0.1, seed=0)
        assert graph.num_vertices == pytest.approx(1972, abs=5)
        assert graph.name == "PB"

    def test_ppi_is_multilabel(self):
        graph = build_dataset("ppi", scale=0.02, seed=0)
        assert graph.labels.ndim == 2
        assert graph.labels.shape[1] == 121
        assert np.all(graph.labels.sum(axis=1) >= 1)

    def test_deterministic_given_seed(self):
        first = build_dataset("cora", scale=0.1, seed=5)
        second = build_dataset("cora", scale=0.1, seed=5)
        np.testing.assert_array_equal(first.features, second.features)
        np.testing.assert_array_equal(first.adjacency.indices, second.adjacency.indices)

    def test_different_seeds_differ(self):
        first = build_dataset("cora", scale=0.1, seed=5)
        second = build_dataset("cora", scale=0.1, seed=6)
        assert not np.array_equal(first.adjacency.indices, second.adjacency.indices)


class TestTinyDataset:
    def test_shapes(self):
        graph = tiny_dataset(num_vertices=32, feature_length=16, num_labels=3)
        assert graph.num_vertices == 32
        assert graph.feature_length == 16
        assert graph.num_label_classes == 3

    def test_stats_row_keys(self):
        row = tiny_dataset().stats().as_row()
        assert {"dataset", "vertices", "edges", "feature_length", "labels"} <= set(row)

    def test_memory_footprint(self):
        graph = tiny_dataset()
        assert graph.memory_footprint_bytes() > 0

    def test_with_features_replaces(self):
        graph = tiny_dataset(num_vertices=16, feature_length=8)
        new_features = np.ones((16, 4))
        replaced = graph.with_features(new_features)
        assert replaced.feature_length == 4
        assert replaced.adjacency is graph.adjacency

    def test_feature_shape_mismatch_rejected(self):
        graph = tiny_dataset(num_vertices=16, feature_length=8)
        with pytest.raises(ValueError):
            graph.with_features(np.ones((4, 8)))
