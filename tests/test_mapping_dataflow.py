"""Tests for the Weighting-first vs Aggregation-first dataflow analysis."""

from __future__ import annotations

import pytest

from repro.mapping import compare_dataflow_orders, preferred_dataflow
from repro.models import model_config


class TestDataflowComparison:
    @pytest.fixture(scope="class")
    def cora_costs(self, small_cora):
        dims = model_config("gcn").layer_dimensions(
            small_cora.feature_length, small_cora.num_label_classes
        )
        return compare_dataflow_orders(small_cora, dims)

    def test_one_entry_per_layer(self, cora_costs):
        assert len(cora_costs) == 2
        assert [cost.layer_index for cost in cora_costs] == [0, 1]

    def test_weighting_first_wins_on_input_layer(self, cora_costs):
        """With F_in = 1433 >> F_out = 128, Ã(HW) is far cheaper than (ÃH)W —
        the Section III claim of ~an order of magnitude."""
        first_layer = cora_costs[0]
        assert first_layer.advantage > 3.0
        assert first_layer.preferred_order == "weighting_first"

    def test_sparse_weighting_cheaper_than_dense(self, cora_costs):
        first_layer = cora_costs[0]
        assert first_layer.weighting_macs < first_layer.dense_weighting_macs / 10

    def test_aggregation_width_drives_difference(self, cora_costs):
        first_layer = cora_costs[0]
        ratio = (
            first_layer.aggregation_ops_aggregation_first
            / first_layer.aggregation_ops_weighting_first
        )
        assert ratio == pytest.approx(first_layer.in_features / first_layer.out_features)

    def test_preferred_dataflow_overall(self, cora_costs):
        assert preferred_dataflow(cora_costs) == "weighting_first"

    def test_preferred_dataflow_rejects_empty(self):
        with pytest.raises(ValueError):
            preferred_dataflow([])

    def test_expanding_layer_prefers_aggregation_first(self, tiny_graph):
        """When the output is much wider than the input (expanding layer),
        aggregating first is the cheaper order — the comparison must be able
        to report that case too (EnGN's dimension-aware reordering)."""
        costs = compare_dataflow_orders(tiny_graph, [(8, 512)])
        assert costs[0].preferred_order == "aggregation_first"

    def test_hidden_density_parameter(self, small_cora):
        dims = [(small_cora.feature_length, 128), (128, 7)]
        dense = compare_dataflow_orders(small_cora, dims, hidden_density=1.0)
        sparse = compare_dataflow_orders(small_cora, dims, hidden_density=0.3)
        # Layer 0 uses the actual input features; the density parameter only
        # models the post-ReLU hidden layers.
        assert sparse[0].weighting_macs == dense[0].weighting_macs
        assert sparse[1].weighting_macs < dense[1].weighting_macs
