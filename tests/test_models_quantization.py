"""Tests for the fixed-point quantization utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    build_model,
    dequantize_tensor,
    quantization_error,
    quantize_tensor,
    quantized_model_agreement,
)


class TestQuantizeTensor:
    def test_roundtrip_error_bounded_by_scale(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(50, 20))
        tensor = quantize_tensor(values, bits=8)
        reconstructed = dequantize_tensor(tensor)
        assert np.max(np.abs(values - reconstructed)) <= tensor.scale / 2 + 1e-12

    def test_preserves_zeros(self):
        values = np.array([0.0, 1.0, -1.0, 0.0])
        reconstructed = dequantize_tensor(quantize_tensor(values))
        assert reconstructed[0] == 0.0 and reconstructed[3] == 0.0

    def test_int8_storage(self):
        tensor = quantize_tensor(np.random.default_rng(1).normal(size=100), bits=8)
        assert tensor.values.dtype == np.int8
        assert tensor.memory_bytes() == 100

    def test_int16_storage_for_wider_widths(self):
        tensor = quantize_tensor(np.ones(10), bits=12)
        assert tensor.values.dtype == np.int16
        assert tensor.memory_bytes() == 20

    def test_all_zero_input(self):
        tensor = quantize_tensor(np.zeros(16))
        np.testing.assert_array_equal(dequantize_tensor(tensor), np.zeros(16))

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(4), bits=1)
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(4), bits=32)

    @settings(max_examples=40, deadline=None)
    @given(
        bits=st.integers(min_value=4, max_value=12),
        seed=st.integers(min_value=0, max_value=500),
        scale=st.floats(min_value=0.01, max_value=1000.0),
    )
    def test_error_shrinks_with_precision(self, bits, seed, scale):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=200) * scale
        coarse = quantization_error(values, bits=bits)
        fine = quantization_error(values, bits=min(16, bits + 4))
        assert fine["relative_l2_error"] <= coarse["relative_l2_error"] + 1e-12


class TestQuantizationError:
    def test_eight_bit_error_small(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=(100, 30))
        error = quantization_error(values, bits=8)
        assert error["relative_l2_error"] < 0.01

    def test_keys_present(self):
        error = quantization_error(np.ones(5))
        assert {"max_abs_error", "relative_l2_error", "mean_abs_error"} <= set(error)


class TestModelAgreement:
    def test_eight_bit_inference_matches_fp_predictions(self, tiny_graph):
        """The paper's 1-byte datapath: argmax predictions should survive
        8-bit quantization of weights and inputs on almost every vertex."""
        model = build_model("gcn", tiny_graph.feature_length, tiny_graph.num_label_classes, seed=0)
        report = quantized_model_agreement(model, tiny_graph, bits=8)
        assert report["argmax_agreement"] > 0.9
        assert report["relative_output_error"] < 0.1

    def test_low_precision_degrades(self, tiny_graph):
        model = build_model("gcn", tiny_graph.feature_length, tiny_graph.num_label_classes, seed=0)
        fine = quantized_model_agreement(model, tiny_graph, bits=8)
        coarse = quantized_model_agreement(model, tiny_graph, bits=3)
        assert coarse["relative_output_error"] >= fine["relative_output_error"]

    def test_weights_restored_after_agreement_check(self, tiny_graph):
        model = build_model("gcn", tiny_graph.feature_length, tiny_graph.num_label_classes, seed=0)
        before = [m.copy() for layer in model.layers for m in layer.weight_matrices()]
        quantized_model_agreement(model, tiny_graph, bits=4)
        after = [m for layer in model.layers for m in layer.weight_matrices()]
        for original, restored in zip(before, after):
            np.testing.assert_array_equal(original, restored)
