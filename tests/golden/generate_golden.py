"""Regenerate the golden equivalence snapshots.

Each snapshot is the full JSON report of one ``GNNIESimulator`` inference for
one (dataset, family) pair.  They were dumped from the pre-plan-IR engine
(commit adae848) and pin the refactored lower-then-execute path to the
original behaviour: ``tests/test_plan_golden.py`` fails if any cycle, byte or
energy number drifts.

Run from the repository root to regenerate after an *intentional* model
change::

    PYTHONPATH=src python tests/golden/generate_golden.py
"""

from __future__ import annotations

import pathlib

from repro.datasets import build_dataset
from repro.models import MODEL_FAMILIES
from repro.sim import GNNIESimulator
from repro.sim.trace import result_to_json

#: (dataset, scale, seed) triples simulated for every family.  Scaled-down
#: stand-ins keep the 15 simulations fast enough for the tier-1 suite.
GOLDEN_DATASETS = (
    ("cora", 0.25, 1),
    ("citeseer", 0.25, 1),
    ("pubmed", 0.1, 1),
)

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent


def main() -> None:
    for dataset, scale, seed in GOLDEN_DATASETS:
        graph = build_dataset(dataset, scale=scale, seed=seed)
        simulator = GNNIESimulator()
        for family in MODEL_FAMILIES:
            result = simulator.run(graph, family)
            path = GOLDEN_DIR / f"{dataset}_{family}.json"
            path.write_text(result_to_json(result) + "\n")
            print(f"wrote {path.name}: {result.total_cycles} cycles")


if __name__ == "__main__":
    main()
