"""Regenerate the golden equivalence snapshots.

Each ``<dataset>_<family>.json`` snapshot is the full JSON report of one
``GNNIESimulator`` inference.  The cora/citeseer/pubmed files were dumped
from the pre-plan-IR engine (commit adae848) and pin the refactored
lower-then-execute path to the original behaviour; the ppi/reddit files
were generated from the plan-IR engine and pin the remaining cells of the
5-dataset × 5-family matrix against regression.
``tests/test_plan_golden.py`` fails if any cycle, byte or energy number
drifts.

``baseline_platforms.json`` snapshots the shared workload derivation and
the five baseline platform cost models for every (dataset, family) pair.

Run from the repository root to regenerate after an *intentional* model
change::

    PYTHONPATH=src python tests/golden/generate_golden.py
"""

from __future__ import annotations

import json
import pathlib

from repro.baselines import (
    AWBGCNModel,
    EnGNModel,
    HyGCNModel,
    PyGCPUModel,
    PyGGPUModel,
    estimate_workload,
)
from repro.datasets import build_dataset
from repro.models import MODEL_FAMILIES
from repro.plan import lower
from repro.sim import GNNIESimulator
from repro.sim.trace import result_to_json

#: (dataset, scale, seed) triples simulated for every family.  Scaled-down
#: stand-ins keep the 25 simulations fast enough for the tier-1 suite.
GOLDEN_DATASETS = (
    ("cora", 0.25, 1),
    ("citeseer", 0.25, 1),
    ("pubmed", 0.1, 1),
    ("ppi", 0.02, 1),
    ("reddit", 0.002, 1),
)

#: Workload totals pinned per (dataset, family) in baseline_platforms.json.
WORKLOAD_TOTALS = (
    "dense_weighting_macs",
    "sparse_weighting_macs",
    "aggregation_ops",
    "aggregation_ops_aggregation_first",
    "attention_ops",
    "sampling_ops",
    "dram_bytes",
)

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent


def main() -> None:
    platforms = (PyGCPUModel(), PyGGPUModel(), HyGCNModel(), AWBGCNModel(), EnGNModel())
    baseline_snapshot: dict[str, dict] = {}
    for dataset, scale, seed in GOLDEN_DATASETS:
        graph = build_dataset(dataset, scale=scale, seed=seed)
        simulator = GNNIESimulator()
        for family in MODEL_FAMILIES:
            result = simulator.run(graph, family)
            path = GOLDEN_DIR / f"{dataset}_{family}.json"
            path.write_text(result_to_json(result) + "\n")
            print(f"wrote {path.name}: {result.total_cycles} cycles")

            workload = estimate_workload(graph, family)
            entry = {name: getattr(workload, name) for name in WORKLOAD_TOTALS}
            plan = lower(family, graph)
            entry["platforms"] = {
                platform.name: {
                    "latency_seconds": (execution := platform.execute(plan, graph)).latency_seconds,
                    "energy_joules": execution.energy_joules,
                }
                for platform in platforms
                if platform.supports(family)
            }
            baseline_snapshot[f"{dataset}_{family}"] = entry
    baseline_path = GOLDEN_DIR / "baseline_platforms.json"
    baseline_path.write_text(json.dumps(baseline_snapshot, indent=2) + "\n")
    print(f"wrote {baseline_path.name}: {len(baseline_snapshot)} entries")


if __name__ == "__main__":
    main()
