"""Tests for the workload estimator and the baseline platform cost models."""

from __future__ import annotations

import pytest

from repro.baselines import (
    AWBGCNModel,
    HyGCNModel,
    PyGCPUModel,
    PyGGPUModel,
    estimate_workload,
)
from repro.models import MODEL_FAMILIES
from repro.sim import GNNIESimulator


class TestWorkloadEstimator:
    @pytest.mark.parametrize("family", MODEL_FAMILIES)
    def test_positive_counts(self, family, tiny_graph):
        workload = estimate_workload(tiny_graph, family)
        assert workload.dense_weighting_macs > 0
        assert workload.sparse_weighting_macs > 0
        assert workload.dram_bytes > 0

    def test_sparse_fewer_than_dense_macs(self, small_cora):
        workload = estimate_workload(small_cora, "gcn")
        assert workload.sparse_weighting_macs < workload.dense_weighting_macs / 5

    def test_aggregation_first_costs_more_on_input_layer(self, small_cora):
        """(Ã H) W aggregates at the input width (1433 for Cora) which is far
        more work than aggregating at the hidden width (Section III)."""
        workload = estimate_workload(small_cora, "gcn")
        first_layer = workload.layers[0]
        assert (
            first_layer.aggregation_ops_aggregation_first
            > 3 * first_layer.aggregation_ops_weighting_first
        )

    def test_gat_has_attention_ops(self, tiny_graph):
        assert estimate_workload(tiny_graph, "gat").attention_ops > 0
        assert estimate_workload(tiny_graph, "gcn").attention_ops == 0

    def test_graphsage_sampling_ops(self, tiny_graph):
        workload = estimate_workload(tiny_graph, "graphsage")
        # Sampling is performed once per layer (25 pregenerated draws per
        # vertex per layer).
        assert workload.sampling_ops == tiny_graph.num_vertices * 25 * len(workload.layers)

    def test_diffpool_has_three_components(self, tiny_graph):
        workload = estimate_workload(tiny_graph, "diffpool")
        assert len(workload.layers) == 3

    def test_layer_count_for_message_passing(self, tiny_graph):
        assert len(estimate_workload(tiny_graph, "gcn").layers) == 2


class TestPlatformModels:
    @pytest.fixture(scope="class")
    def platforms(self):
        return PyGCPUModel(), PyGGPUModel(), HyGCNModel(), AWBGCNModel()

    def test_latencies_positive(self, platforms, tiny_graph):
        workload = estimate_workload(tiny_graph, "gcn")
        for platform in platforms:
            result = platform.evaluate(tiny_graph, workload)
            assert result.latency_seconds > 0
            assert result.energy_joules > 0
            assert result.inferences_per_kilojoule > 0

    def test_gpu_faster_than_cpu(self, platforms, small_cora):
        cpu, gpu, _, _ = platforms
        workload = estimate_workload(small_cora, "gcn")
        assert gpu.evaluate(small_cora, workload).latency_seconds < cpu.evaluate(
            small_cora, workload
        ).latency_seconds

    def test_hygcn_rejects_gat(self, platforms, tiny_graph):
        hygcn = platforms[2]
        assert not hygcn.supports("gat")
        with pytest.raises(ValueError):
            hygcn.evaluate(tiny_graph, estimate_workload(tiny_graph, "gat"))

    def test_awbgcn_supports_only_gcn(self, platforms, tiny_graph):
        awb = platforms[3]
        assert awb.supports("gcn")
        for family in ("gat", "graphsage", "ginconv", "diffpool"):
            assert not awb.supports(family)

    def test_accelerators_faster_than_cpu(self, platforms, small_cora):
        cpu, _, hygcn, awb = platforms
        workload = estimate_workload(small_cora, "gcn")
        cpu_latency = cpu.evaluate(small_cora, workload).latency_seconds
        assert hygcn.evaluate(small_cora, workload).latency_seconds < cpu_latency
        assert awb.evaluate(small_cora, workload).latency_seconds < cpu_latency

    def test_platform_names(self, platforms):
        assert [p.name for p in platforms] == ["PyG-CPU", "PyG-GPU", "HyGCN", "AWB-GCN"]


class TestGNNIEAgainstBaselines:
    """End-to-end sanity: GNNIE must beat every baseline on a real dataset."""

    @pytest.fixture(scope="class")
    def gnnie_result(self, small_cora):
        return GNNIESimulator().run(small_cora, "gcn")

    def test_faster_than_cpu_by_orders_of_magnitude(self, gnnie_result, small_cora):
        cpu = PyGCPUModel().evaluate(small_cora, estimate_workload(small_cora, "gcn"))
        assert cpu.latency_seconds / gnnie_result.latency_seconds > 50

    def test_faster_than_gpu(self, gnnie_result, small_cora):
        gpu = PyGGPUModel().evaluate(small_cora, estimate_workload(small_cora, "gcn"))
        assert gpu.latency_seconds / gnnie_result.latency_seconds > 2

    def test_faster_than_hygcn(self, gnnie_result, small_cora):
        hygcn = HyGCNModel().evaluate(small_cora, estimate_workload(small_cora, "gcn"))
        assert hygcn.latency_seconds / gnnie_result.latency_seconds > 2

    def test_competitive_with_awbgcn_using_fewer_macs(self, gnnie_result, small_cora):
        awb = AWBGCNModel().evaluate(small_cora, estimate_workload(small_cora, "gcn"))
        speedup = awb.latency_seconds / gnnie_result.latency_seconds
        assert speedup > 0.8  # at least competitive despite 3.4x fewer MACs

    def test_more_energy_efficient_than_accelerator_baselines(self, gnnie_result, small_cora):
        workload = estimate_workload(small_cora, "gcn")
        hygcn = HyGCNModel().evaluate(small_cora, workload)
        awb = AWBGCNModel().evaluate(small_cora, workload)
        assert gnnie_result.inferences_per_kilojoule > hygcn.inferences_per_kilojoule
        assert gnnie_result.inferences_per_kilojoule > awb.inferences_per_kilojoule
