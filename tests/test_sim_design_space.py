"""Tests for the design-space exploration utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import AcceleratorConfig, design_preset
from repro.sim import (
    admissible_mac_allocation,
    pareto_front,
    sweep_buffer_sizes,
    sweep_designs,
    sweep_mac_allocations,
)
from repro.sim.design_space import DesignPoint


class TestSweepDesigns:
    @pytest.fixture(scope="class")
    def points(self, tiny_graph):
        configs = [design_preset(name) for name in ("A", "D", "E")]
        return sweep_designs(tiny_graph, "gcn", configs)

    def test_one_point_per_config(self, points):
        assert [point.name for point in points] == ["Design A", "Design D", "Design E (GNNIE)"]

    def test_fields_populated(self, points):
        for point in points:
            assert point.cycles > 0
            assert point.latency_seconds > 0
            assert point.area_mm2 > 0
            assert point.energy_joules > 0

    def test_more_macs_never_slower(self, points):
        design_a = next(p for p in points if p.name == "Design A")
        design_d = next(p for p in points if p.name == "Design D")
        assert design_d.cycles <= design_a.cycles
        assert design_d.area_mm2 > design_a.area_mm2

    def test_beta_versus_baseline(self, points):
        design_a = next(p for p in points if p.name == "Design A")
        design_e = next(p for p in points if p.name.startswith("Design E"))
        beta = design_e.beta_versus(design_a)
        assert beta >= 0
        # β against itself is undefined (no added MACs).
        import math

        assert math.isnan(design_a.beta_versus(design_a))


class TestCycleAreaProduct:
    def test_is_the_product_not_a_ratio(self):
        """Pin the renamed metric's semantics: cycles × mm², a cost scalar.

        The property was formerly (mis)named ``cycles_per_mm2`` while always
        computing the product.
        """
        point = _point(4, 1.0, 2.5)  # cycles=4, area=2.5 mm²
        assert point.cycle_area_product == pytest.approx(4 * 2.5)
        assert not hasattr(point, "cycles_per_mm2")


class TestAdmissibleMacAllocation:
    def test_paper_allocation_admissible(self):
        assert admissible_mac_allocation(
            (4, 5, 6), group_sizes=(8, 4, 4), num_cols=16, mac_budget=1280
        )

    def test_rejects_non_monotonic(self):
        assert not admissible_mac_allocation(
            (6, 5, 4), group_sizes=(8, 4, 4), num_cols=16, mac_budget=10_000
        )

    def test_rejects_over_budget(self):
        assert not admissible_mac_allocation(
            (8, 8, 8), group_sizes=(8, 4, 4), num_cols=16, mac_budget=1280
        )

    def test_rejects_shape_mismatch_and_nonpositive(self):
        assert not admissible_mac_allocation(
            (4, 5), group_sizes=(8, 4, 4), num_cols=16, mac_budget=1280
        )
        assert not admissible_mac_allocation(
            (0, 1, 2), group_sizes=(8, 4, 4), num_cols=16, mac_budget=1280
        )

    def test_grid_enumerates_only_admissible(self):
        for config in sweep_mac_allocations(mac_budget=1216):
            assert admissible_mac_allocation(
                config.macs_per_group,
                group_sizes=config.rows_per_group,
                num_cols=16,
                mac_budget=1216,
            )


class TestMacAllocationSweep:
    def test_respects_budget_and_monotonicity(self):
        configs = sweep_mac_allocations(mac_budget=1216, candidate_macs=(3, 4, 5, 6))
        assert configs  # at least one admissible allocation
        for config in configs:
            assert config.total_macs <= 1216
            assert list(config.macs_per_group) == sorted(config.macs_per_group)

    def test_paper_allocation_present_at_budget(self):
        configs = sweep_mac_allocations(mac_budget=1216, candidate_macs=(4, 5, 6))
        allocations = {config.macs_per_group for config in configs}
        assert (4, 5, 6) in allocations

    def test_budget_excludes_expensive_allocations(self):
        configs = sweep_mac_allocations(mac_budget=1024, candidate_macs=(4, 5, 6))
        assert all(config.total_macs <= 1024 for config in configs)
        assert all((6, 6, 6) != config.macs_per_group for config in configs)


class TestBufferSweepAndPareto:
    def test_buffer_sweep_shapes(self, tiny_graph):
        points = sweep_buffer_sizes(
            tiny_graph,
            "gcn",
            input_buffer_kib=(128, 512),
            output_buffer_kib=(1024,),
        )
        assert len(points) == 2
        assert {point.config.input_buffer_bytes for point in points} == {128 * 1024, 512 * 1024}

    def test_input_buffer_axis_changes_cycles_not_just_area(self, medium_graph):
        """The headline regression: explicit input-buffer sizes must reach
        the simulator.

        ``GNNIEExecutor.execute`` used to unconditionally re-apply the
        paper's per-dataset sizing, clobbering a sweep cell's explicit
        ``input_buffer_bytes`` while the area model still saw the override —
        so the input axis of a buffer sweep moved area but never cycles and
        "smallest buffer always wins" on the Pareto front.
        """
        small_kib, large_kib = 2, 64
        points = sweep_buffer_sizes(
            medium_graph,
            "gcn",
            input_buffer_kib=(small_kib, large_kib),
            output_buffer_kib=(1024,),
        )
        cycles = {p.config.input_buffer_bytes: p.cycles for p in points}
        areas = {p.config.input_buffer_bytes: p.area_mm2 for p in points}
        # Cycles respond to the input axis — the starved buffer refetches.
        assert cycles[small_kib * 1024] > cycles[large_kib * 1024]
        # Area still responds too (it always did).
        assert areas[small_kib * 1024] < areas[large_kib * 1024]

    def test_pareto_front_filters_dominated(self, tiny_graph):
        configs = [design_preset(name) for name in ("A", "B", "C", "D", "E")]
        points = sweep_designs(tiny_graph, "gcn", configs)
        front = pareto_front(points)
        assert front
        assert len(front) <= len(points)
        # No point on the front is dominated by another front point.
        for candidate in front:
            assert not any(
                other is not candidate
                and other.latency_seconds <= candidate.latency_seconds
                and other.area_mm2 <= candidate.area_mm2
                and (
                    other.latency_seconds < candidate.latency_seconds
                    or other.area_mm2 < candidate.area_mm2
                )
                for other in front
            )

    def test_front_sorted_by_latency(self, tiny_graph):
        configs = [design_preset(name) for name in ("A", "D", "E")]
        front = pareto_front(sweep_designs(tiny_graph, "gcn", configs))
        latencies = [point.latency_seconds for point in front]
        assert latencies == sorted(latencies)


def _point(index: int, latency: float, area: float) -> DesignPoint:
    return DesignPoint(
        name=f"P{index}",
        config=None,
        total_macs=index,
        area_mm2=area,
        cycles=index,
        latency_seconds=latency,
        energy_joules=1.0,
    )


def _pareto_front_all_pairs(points: list[DesignPoint]) -> list[DesignPoint]:
    """The pre-optimization O(n²) all-pairs domination oracle, verbatim."""
    front: list[DesignPoint] = []
    for candidate in points:
        dominated = any(
            other.latency_seconds <= candidate.latency_seconds
            and other.area_mm2 <= candidate.area_mm2
            and (
                other.latency_seconds < candidate.latency_seconds
                or other.area_mm2 < candidate.area_mm2
            )
            for other in points
        )
        if not dominated:
            front.append(candidate)
    return sorted(front, key=lambda point: point.latency_seconds)


class TestParetoEquivalence:
    """The sort-then-scan front must match the old all-pairs definition."""

    @settings(max_examples=200, deadline=None)
    @given(
        coordinates=st.lists(
            st.tuples(
                # Small integer-valued grids force plenty of exact latency
                # and area ties, plus full (latency, area) duplicates.
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=6),
            ),
            min_size=0,
            max_size=40,
        )
    )
    def test_matches_all_pairs_oracle_on_tied_grids(self, coordinates):
        points = [
            _point(index, float(latency), float(area))
            for index, (latency, area) in enumerate(coordinates)
        ]
        got = pareto_front(points)
        want = _pareto_front_all_pairs(points)
        assert [point.name for point in got] == [point.name for point in want]

    @settings(max_examples=100, deadline=None)
    @given(
        coordinates=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
                st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
            ),
            min_size=0,
            max_size=40,
        )
    )
    def test_matches_all_pairs_oracle_on_float_points(self, coordinates):
        points = [
            _point(index, latency, area)
            for index, (latency, area) in enumerate(coordinates)
        ]
        got = pareto_front(points)
        want = _pareto_front_all_pairs(points)
        assert [point.name for point in got] == [point.name for point in want]

    def test_duplicates_of_a_front_point_all_survive(self):
        points = [_point(0, 1.0, 2.0), _point(1, 1.0, 2.0), _point(2, 3.0, 1.0)]
        front = pareto_front(points)
        assert [point.name for point in front] == ["P0", "P1", "P2"]

    def test_equal_latency_higher_area_is_dominated(self):
        points = [_point(0, 1.0, 2.0), _point(1, 1.0, 3.0)]
        assert [point.name for point in pareto_front(points)] == ["P0"]

    def test_area_tie_at_larger_latency_is_dominated(self):
        points = [_point(0, 1.0, 2.0), _point(1, 5.0, 2.0)]
        assert [point.name for point in pareto_front(points)] == ["P0"]

    def test_empty_input(self):
        assert pareto_front([]) == []
