"""Tests for the design-space exploration utilities."""

from __future__ import annotations

import pytest

from repro.hw import AcceleratorConfig, design_preset
from repro.sim import (
    pareto_front,
    sweep_buffer_sizes,
    sweep_designs,
    sweep_mac_allocations,
)


class TestSweepDesigns:
    @pytest.fixture(scope="class")
    def points(self, tiny_graph):
        configs = [design_preset(name) for name in ("A", "D", "E")]
        return sweep_designs(tiny_graph, "gcn", configs)

    def test_one_point_per_config(self, points):
        assert [point.name for point in points] == ["Design A", "Design D", "Design E (GNNIE)"]

    def test_fields_populated(self, points):
        for point in points:
            assert point.cycles > 0
            assert point.latency_seconds > 0
            assert point.area_mm2 > 0
            assert point.energy_joules > 0

    def test_more_macs_never_slower(self, points):
        design_a = next(p for p in points if p.name == "Design A")
        design_d = next(p for p in points if p.name == "Design D")
        assert design_d.cycles <= design_a.cycles
        assert design_d.area_mm2 > design_a.area_mm2

    def test_beta_versus_baseline(self, points):
        design_a = next(p for p in points if p.name == "Design A")
        design_e = next(p for p in points if p.name.startswith("Design E"))
        beta = design_e.beta_versus(design_a)
        assert beta >= 0
        # β against itself is undefined (no added MACs).
        import math

        assert math.isnan(design_a.beta_versus(design_a))


class TestMacAllocationSweep:
    def test_respects_budget_and_monotonicity(self):
        configs = sweep_mac_allocations(mac_budget=1216, candidate_macs=(3, 4, 5, 6))
        assert configs  # at least one admissible allocation
        for config in configs:
            assert config.total_macs <= 1216
            assert list(config.macs_per_group) == sorted(config.macs_per_group)

    def test_paper_allocation_present_at_budget(self):
        configs = sweep_mac_allocations(mac_budget=1216, candidate_macs=(4, 5, 6))
        allocations = {config.macs_per_group for config in configs}
        assert (4, 5, 6) in allocations

    def test_budget_excludes_expensive_allocations(self):
        configs = sweep_mac_allocations(mac_budget=1024, candidate_macs=(4, 5, 6))
        assert all(config.total_macs <= 1024 for config in configs)
        assert all((6, 6, 6) != config.macs_per_group for config in configs)


class TestBufferSweepAndPareto:
    def test_buffer_sweep_shapes(self, tiny_graph):
        points = sweep_buffer_sizes(
            tiny_graph,
            "gcn",
            input_buffer_kib=(128, 512),
            output_buffer_kib=(1024,),
        )
        assert len(points) == 2
        assert {point.config.input_buffer_bytes for point in points} == {128 * 1024, 512 * 1024}

    def test_pareto_front_filters_dominated(self, tiny_graph):
        configs = [design_preset(name) for name in ("A", "B", "C", "D", "E")]
        points = sweep_designs(tiny_graph, "gcn", configs)
        front = pareto_front(points)
        assert front
        assert len(front) <= len(points)
        # No point on the front is dominated by another front point.
        for candidate in front:
            assert not any(
                other is not candidate
                and other.latency_seconds <= candidate.latency_seconds
                and other.area_mm2 <= candidate.area_mm2
                and (
                    other.latency_seconds < candidate.latency_seconds
                    or other.area_mm2 < candidate.area_mm2
                )
                for other in front
            )

    def test_front_sorted_by_latency(self, tiny_graph):
        configs = [design_preset(name) for name in ("A", "D", "E")]
        front = pareto_front(sweep_designs(tiny_graph, "gcn", configs))
        latencies = [point.latency_seconds for point in front]
        assert latencies == sorted(latencies)
