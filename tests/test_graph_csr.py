"""Unit and property tests for the CSR adjacency structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph


# --------------------------------------------------------------------------- #
# Construction
# --------------------------------------------------------------------------- #
class TestConstruction:
    def test_from_edge_list_symmetric_stores_both_directions(self):
        graph = CSRGraph.from_edge_list([(0, 1)], num_vertices=3, symmetric=True)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.num_edges == 2

    def test_from_edge_list_directed(self):
        graph = CSRGraph.from_edge_list([(0, 1)], num_vertices=3, symmetric=False)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_deduplication(self):
        graph = CSRGraph.from_edge_list(
            [(0, 1), (0, 1), (1, 0)], num_vertices=2, symmetric=True
        )
        assert graph.num_edges == 2

    def test_empty_edge_list(self):
        graph = CSRGraph.from_edge_list([], num_vertices=4)
        assert graph.num_vertices == 4
        assert graph.num_edges == 0
        assert graph.degrees().tolist() == [0, 0, 0, 0]

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edge_list([(0, 5)], num_vertices=3)

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([1, 2]), indices=np.array([0]))

    def test_indptr_tail_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([0, 2]), indices=np.array([0]))

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([0, 2, 1]), indices=np.array([0, 1]))

    def test_from_dense_matches_edges(self):
        dense = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
        graph = CSRGraph.from_dense(dense)
        np.testing.assert_array_equal(graph.to_dense(), dense)

    def test_from_dense_requires_square(self):
        with pytest.raises(ValueError):
            CSRGraph.from_dense(np.zeros((2, 3)))

    def test_from_scipy_roundtrip(self):
        graph = CSRGraph.from_edge_list([(0, 1), (1, 2)], num_vertices=3, symmetric=True)
        again = CSRGraph.from_scipy(graph.to_scipy())
        np.testing.assert_array_equal(graph.indptr, again.indptr)
        np.testing.assert_array_equal(graph.indices, again.indices)


# --------------------------------------------------------------------------- #
# Queries
# --------------------------------------------------------------------------- #
class TestQueries:
    def test_degrees_line_graph(self, line_graph):
        assert line_graph.degrees().tolist() == [1, 2, 2, 2, 2, 1]

    def test_neighbors_are_sorted_and_readonly(self, line_graph):
        neighbors = line_graph.neighbors(2)
        assert neighbors.tolist() == [1, 3]
        with pytest.raises(ValueError):
            neighbors[0] = 7

    def test_neighbor_out_of_range(self, line_graph):
        with pytest.raises(IndexError):
            line_graph.neighbors(17)

    def test_star_graph_max_degree(self, star_graph):
        assert star_graph.max_degree() == 7
        assert star_graph.degree(0) == 7
        assert star_graph.degree(3) == 1

    def test_sparsity(self, star_graph):
        expected = 1.0 - 14 / 64
        assert star_graph.sparsity() == pytest.approx(expected)

    def test_average_degree(self, line_graph):
        assert line_graph.average_degree() == pytest.approx(10 / 6)

    def test_edge_array_matches_iter_edges(self, line_graph):
        from_array = {tuple(edge) for edge in line_graph.edge_array()}
        from_iter = set(line_graph.iter_edges())
        assert from_array == from_iter

    def test_memory_footprint_positive(self, line_graph):
        assert line_graph.memory_footprint_bytes() > 0


# --------------------------------------------------------------------------- #
# Subgraphs
# --------------------------------------------------------------------------- #
class TestSubgraphs:
    def test_induced_edges_line(self, line_graph):
        edges = line_graph.induced_edges([0, 1, 2])
        pairs = {tuple(edge) for edge in edges}
        assert pairs == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_induced_edges_empty_set(self, line_graph):
        assert line_graph.induced_edges([]).shape == (0, 2)

    def test_induced_edges_disconnected_subset(self, line_graph):
        assert line_graph.induced_edges([0, 3]).shape == (0, 2)

    def test_subgraph_relabels(self, line_graph):
        sub = line_graph.subgraph([2, 3, 4])
        assert sub.num_vertices == 3
        assert sub.degrees().tolist() == [1, 2, 1]

    def test_with_self_loops(self, line_graph):
        looped = line_graph.with_self_loops()
        assert all(looped.has_edge(v, v) for v in range(looped.num_vertices))
        assert looped.num_edges == line_graph.num_edges + line_graph.num_vertices


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #
@st.composite
def random_edge_lists(draw):
    num_vertices = draw(st.integers(min_value=2, max_value=30))
    num_edges = draw(st.integers(min_value=0, max_value=80))
    edges = [
        (
            draw(st.integers(min_value=0, max_value=num_vertices - 1)),
            draw(st.integers(min_value=0, max_value=num_vertices - 1)),
        )
        for _ in range(num_edges)
    ]
    return num_vertices, edges


@settings(max_examples=40, deadline=None)
@given(random_edge_lists())
def test_symmetric_storage_has_symmetric_dense(data):
    num_vertices, edges = data
    graph = CSRGraph.from_edge_list(edges, num_vertices=num_vertices, symmetric=True)
    dense = graph.to_dense()
    np.testing.assert_array_equal(dense, dense.T)


@settings(max_examples=40, deadline=None)
@given(random_edge_lists())
def test_indptr_consistent_with_degrees(data):
    num_vertices, edges = data
    graph = CSRGraph.from_edge_list(edges, num_vertices=num_vertices, symmetric=True)
    assert graph.indptr[-1] == graph.num_edges
    np.testing.assert_array_equal(np.diff(graph.indptr), graph.degrees())


@settings(max_examples=40, deadline=None)
@given(random_edge_lists())
def test_induced_edges_subset_of_all_edges(data):
    num_vertices, edges = data
    graph = CSRGraph.from_edge_list(edges, num_vertices=num_vertices, symmetric=True)
    subset = list(range(0, num_vertices, 2))
    induced = {tuple(edge) for edge in graph.induced_edges(subset)}
    all_edges = {tuple(edge) for edge in graph.edge_array()}
    assert induced <= all_edges
    members = set(subset)
    assert all(src in members and dst in members for src, dst in induced)
