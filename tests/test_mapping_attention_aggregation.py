"""Tests for the GAT attention mapping and the Aggregation cycle model."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import power_law_graph
from repro.hw import AcceleratorConfig
from repro.mapping import (
    AggregationCycleModel,
    attention_terms_functional,
    naive_attention_operations,
    schedule_attention,
)
from repro.models import segment_sum


class TestAttentionSchedule:
    def test_mac_count_is_linear(self):
        config = AcceleratorConfig()
        schedule = schedule_attention(1000, 128, config)
        assert schedule.total_macs == 2 * 1000 * 128

    def test_linear_vs_naive_operation_count(self):
        """GNNIE's reordering is O(V+E); the naive scheme is O(E*F)."""
        num_vertices, num_edges, feature = 1000, 20_000, 128
        reordered = schedule_attention(num_vertices, feature, AcceleratorConfig()).total_macs
        naive = naive_attention_operations(num_vertices, num_edges, feature)
        assert naive > 5 * reordered

    def test_cycles_scale_with_vertices(self):
        config = AcceleratorConfig()
        small = schedule_attention(100, 128, config)
        large = schedule_attention(10_000, 128, config)
        assert large.compute_cycles > 50 * small.compute_cycles

    def test_chunk_and_column_batch(self):
        config = AcceleratorConfig()
        schedule = schedule_attention(500, 130, config)
        assert schedule.chunk_size == -(-130 // config.num_cols)
        assert schedule.vertices_per_column >= 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            schedule_attention(-1, 128, AcceleratorConfig())
        with pytest.raises(ValueError):
            schedule_attention(10, 0, AcceleratorConfig())
        with pytest.raises(ValueError):
            naive_attention_operations(-1, 2, 3)

    def test_functional_blocked_terms_match_direct(self):
        rng = np.random.default_rng(3)
        weighted = rng.normal(size=(50, 70))
        left = rng.normal(size=70)
        right = rng.normal(size=70)
        center, neighbor = attention_terms_functional(weighted, left, right, AcceleratorConfig())
        np.testing.assert_allclose(center, weighted @ left, atol=1e-10)
        np.testing.assert_allclose(neighbor, weighted @ right, atol=1e-10)

    def test_functional_rejects_mismatched_vector(self):
        with pytest.raises(ValueError):
            attention_terms_functional(
                np.ones((4, 8)), np.ones(5), np.ones(8), AcceleratorConfig()
            )


class TestAggregationCycleModel:
    def test_load_balanced_uses_full_array(self):
        config = AcceleratorConfig()
        model = AggregationCycleModel(config, feature_length=128)
        cost = model.iteration_cost(1000, max_edges_per_vertex=50, num_resident_vertices=500)
        ideal = int(np.ceil(2 * 1000 * 128 / config.total_macs))
        assert cost.compute_cycles == ideal

    def test_no_load_balancing_pays_for_hub_vertices(self):
        config = replace(AcceleratorConfig(), enable_aggregation_load_balancing=False)
        model = AggregationCycleModel(config, feature_length=128)
        balanced = AggregationCycleModel(AcceleratorConfig(), feature_length=128)
        skewed = model.iteration_cost(1000, max_edges_per_vertex=400)
        level = balanced.iteration_cost(1000, max_edges_per_vertex=400)
        assert skewed.compute_cycles > level.compute_cycles

    def test_no_lb_cost_grows_with_hub_degree(self):
        config = replace(AcceleratorConfig(), enable_aggregation_load_balancing=False)
        model = AggregationCycleModel(config, feature_length=64)
        small_hub = model.iteration_cost(1000, max_edges_per_vertex=10)
        large_hub = model.iteration_cost(1000, max_edges_per_vertex=500)
        assert large_hub.compute_cycles > small_hub.compute_cycles

    def test_gat_adds_multiplies_and_sfu_work(self):
        plain = AggregationCycleModel(AcceleratorConfig(), 128, is_gat=False)
        gat = AggregationCycleModel(AcceleratorConfig(), 128, is_gat=True)
        plain_cost = plain.iteration_cost(500, num_resident_vertices=300)
        gat_cost = gat.iteration_cost(500, num_resident_vertices=300)
        assert gat_cost.multiply_ops > 0 and plain_cost.multiply_ops == 0
        assert gat_cost.sfu_ops > 0 and plain_cost.sfu_ops == 0
        assert gat_cost.compute_cycles > plain_cost.compute_cycles

    def test_finalization_only_for_gat(self):
        plain = AggregationCycleModel(AcceleratorConfig(), 128, is_gat=False)
        gat = AggregationCycleModel(AcceleratorConfig(), 128, is_gat=True)
        assert plain.finalization_cost(1000).sfu_cycles == 0
        assert gat.finalization_cost(1000).sfu_cycles > 0

    def test_zero_edges(self):
        model = AggregationCycleModel(AcceleratorConfig(), 64)
        cost = model.iteration_cost(0)
        assert cost.compute_cycles == 0 and cost.addition_ops == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            AggregationCycleModel(AcceleratorConfig(), 0)
        model = AggregationCycleModel(AcceleratorConfig(), 16)
        with pytest.raises(ValueError):
            model.iteration_cost(-1)
        with pytest.raises(ValueError):
            model.finalization_cost(-1)

    def test_aggregate_subgraph_matches_segment_sum(self):
        graph = power_law_graph(40, 120, seed=61)
        rng = np.random.default_rng(61)
        weighted = rng.normal(size=(40, 8))
        undirected = graph.edge_array()
        undirected = undirected[undirected[:, 0] < undirected[:, 1]]
        accumulator = np.zeros((40, 8))
        AggregationCycleModel.aggregate_subgraph(weighted, undirected, accumulator)
        directed = graph.edge_array()
        expected = segment_sum(weighted[directed[:, 0]], directed[:, 1], 40)
        np.testing.assert_allclose(accumulator, expected, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(
        edges=st.integers(min_value=0, max_value=5000),
        feature=st.integers(min_value=1, max_value=256),
    )
    def test_lb_cycles_formula_property(self, edges, feature):
        config = AcceleratorConfig()
        model = AggregationCycleModel(config, feature)
        cost = model.iteration_cost(edges)
        assert cost.addition_ops == 2 * edges * feature
        if edges:
            assert cost.compute_cycles >= cost.addition_ops // config.total_macs
