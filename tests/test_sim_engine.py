"""Integration tests for the top-level GNNIE inference simulator."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.hw import AcceleratorConfig, design_preset
from repro.models import MODEL_FAMILIES
from repro.sim import GNNIESimulator


@pytest.fixture(scope="module")
def simulator():
    return GNNIESimulator()


class TestEngineBasics:
    @pytest.mark.parametrize("family", MODEL_FAMILIES)
    def test_every_family_runs(self, family, simulator, tiny_graph):
        result = simulator.run(tiny_graph, family)
        assert result.total_cycles > 0
        assert result.latency_seconds > 0
        assert result.total_mac_operations > 0
        assert result.energy_joules > 0
        assert result.model == family.upper()

    def test_summary_keys(self, simulator, tiny_graph):
        summary = simulator.run(tiny_graph, "gcn").summary()
        assert {"cycles", "latency_s", "macs", "dram_bytes", "energy_j", "effective_tops"} <= set(
            summary
        )

    def test_two_layers_for_message_passing(self, simulator, tiny_graph):
        result = simulator.run(tiny_graph, "gcn")
        assert len(result.layers) == 2
        assert result.layers[0].out_features == 128
        assert result.layers[1].out_features == tiny_graph.num_label_classes

    def test_gat_has_attention_phase(self, simulator, tiny_graph):
        result = simulator.run(tiny_graph, "gat")
        assert all(layer.attention is not None for layer in result.layers)
        gcn = simulator.run(tiny_graph, "gcn")
        assert all(layer.attention is None for layer in gcn.layers)

    def test_gat_slower_than_gcn(self, simulator, tiny_graph):
        gcn = simulator.run(tiny_graph, "gcn")
        gat = simulator.run(tiny_graph, "gat")
        assert gat.total_cycles > gcn.total_cycles

    def test_diffpool_has_three_stages(self, simulator, tiny_graph):
        result = simulator.run(tiny_graph, "diffpool")
        assert len(result.layers) == 3

    def test_unknown_family_rejected(self, simulator, tiny_graph):
        with pytest.raises(KeyError):
            simulator.run(tiny_graph, "transformer")

    def test_out_features_override(self, simulator, tiny_graph):
        result = simulator.run(tiny_graph, "gcn", out_features=11)
        assert result.layers[-1].out_features == 11

    def test_effective_tops_below_peak(self, simulator, tiny_graph):
        config = AcceleratorConfig()
        result = simulator.run(tiny_graph, "gcn")
        assert 0 < result.effective_tops <= config.peak_ops_per_second / 1e12

    def test_inferences_per_kilojoule_positive(self, simulator, tiny_graph):
        result = simulator.run(tiny_graph, "gcn")
        assert result.inferences_per_kilojoule > 0

    def test_chip_area_helper(self, simulator):
        assert simulator.chip_area_mm2() == pytest.approx(15.6, rel=0.15)


class TestEngineEnergy:
    def test_energy_breakdown_components_positive(self, simulator, tiny_graph):
        energy = simulator.run(tiny_graph, "gcn").energy
        assert energy.mac_pj > 0
        assert energy.dram_pj > 0
        assert energy.on_chip_buffer_pj > 0
        assert energy.static_pj > 0

    def test_gat_uses_sfu_energy(self, simulator, tiny_graph):
        gat = simulator.run(tiny_graph, "gat").energy
        assert gat.sfu_pj > 0

    def test_energy_scales_with_graph(self, simulator, tiny_graph, medium_graph):
        small = simulator.run(tiny_graph, "gcn").energy_joules
        large = simulator.run(medium_graph, "gcn").energy_joules
        assert large > small


class TestEngineOptimizationFlags:
    def test_full_config_beats_unoptimized_baseline(self, medium_graph):
        full = GNNIESimulator(AcceleratorConfig()).run(medium_graph, "gcn")
        baseline_cfg = replace(
            design_preset("A"),
            enable_degree_aware_caching=False,
            enable_aggregation_load_balancing=False,
            enable_load_redistribution=False,
            enable_flexible_mac=False,
        )
        baseline = GNNIESimulator(baseline_cfg).run(medium_graph, "gcn")
        assert full.total_cycles < baseline.total_cycles

    def test_degree_caching_reduces_aggregation_time(self, medium_graph):
        with_cp = GNNIESimulator(AcceleratorConfig()).run(medium_graph, "gcn")
        without_cp = GNNIESimulator(
            replace(AcceleratorConfig(), enable_degree_aware_caching=False)
        ).run(medium_graph, "gcn")
        assert with_cp.aggregation_cycles < without_cp.aggregation_cycles

    def test_load_balancing_reduces_aggregation_time(self, medium_graph):
        balanced = GNNIESimulator(AcceleratorConfig()).run(medium_graph, "gcn")
        unbalanced = GNNIESimulator(
            replace(AcceleratorConfig(), enable_aggregation_load_balancing=False)
        ).run(medium_graph, "gcn")
        assert balanced.aggregation_cycles <= unbalanced.aggregation_cycles

    def test_more_macs_reduce_weighting_time(self, medium_graph):
        design_a = GNNIESimulator(design_preset("A")).run(medium_graph, "gcn")
        design_d = GNNIESimulator(design_preset("D")).run(medium_graph, "gcn")
        assert design_d.weighting_cycles < design_a.weighting_cycles

    def test_config_override_per_run(self, medium_graph):
        simulator = GNNIESimulator()
        default = simulator.run(medium_graph, "gcn")
        overridden = simulator.run(medium_graph, "gcn", config=design_preset("A"))
        assert overridden.config_name.startswith("Design A")
        assert default.config_name != overridden.config_name

    def test_input_buffer_sized_by_dataset_name(self, simulator, tiny_graph, small_cora):
        cora_result = simulator.run(small_cora, "gcn")
        assert cora_result.config_name == AcceleratorConfig().name

    def test_cache_simulation_reused_across_runs(self, medium_graph):
        simulator = GNNIESimulator()
        simulator.run(medium_graph, "gcn")
        cached = dict(simulator._cache_results)
        simulator.run(medium_graph, "gat")
        # GAT on the same graph and buffer configuration reuses the entry.
        assert set(cached) <= set(simulator._cache_results)
