"""Tests for the Weighting/Aggregation phase simulators and result records."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.hw import AcceleratorConfig
from repro.sim import (
    PhaseResult,
    run_cache_simulation,
    simulate_aggregation,
    simulate_weighting,
)
from repro.sparse import generate_sparse_features


@pytest.fixture(scope="module")
def features():
    return generate_sparse_features(400, 256, 0.96, seed=13)


class TestPhaseResult:
    def test_totals(self):
        phase = PhaseResult(
            name="weighting",
            compute_cycles=100,
            memory_stall_cycles=20,
            sfu_cycles=5,
            preprocessing_cycles=3,
            dram_read_bytes=50,
            dram_write_bytes=25,
        )
        assert phase.total_cycles == 128
        assert phase.dram_bytes == 75

    def test_merge_adds_fields(self):
        first = PhaseResult(name="aggregation", compute_cycles=10, dram_read_bytes=5)
        second = PhaseResult(name="aggregation", compute_cycles=7, dram_write_bytes=3)
        merged = first.merge(second)
        assert merged.compute_cycles == 17
        assert merged.dram_bytes == 8


class TestSimulateWeighting:
    def test_input_layer_uses_rlc_traffic(self, features):
        config = AcceleratorConfig()
        rlc_phase, _ = simulate_weighting(config, 128, features=features, is_input_layer=True)
        dense_phase, _ = simulate_weighting(config, 128, features=features, is_input_layer=False)
        assert rlc_phase.dram_input_stream_bytes < dense_phase.dram_input_stream_bytes

    def test_mac_operations_match_schedule(self, features):
        phase, schedule = simulate_weighting(AcceleratorConfig(), 64, features=features)
        assert phase.mac_operations == schedule.total_nonzero_macs

    def test_weight_traffic_counts_whole_matrix(self, features):
        phase, _ = simulate_weighting(AcceleratorConfig(), 64, features=features)
        assert phase.dram_weight_stream_bytes == features.shape[1] * 64

    def test_output_traffic_counts_results(self, features):
        phase, _ = simulate_weighting(AcceleratorConfig(), 64, features=features)
        assert phase.dram_output_stream_bytes == features.shape[0] * 64

    def test_statistical_path_matches_explicit_shape(self):
        config = AcceleratorConfig()
        blocks = np.full((200, 16), 3, dtype=np.int64)
        phase, schedule = simulate_weighting(
            config, 32, block_nonzeros=blocks, in_features=256, is_input_layer=False
        )
        assert phase.mac_operations == blocks.sum() * 32
        assert schedule.num_passes == 2

    def test_missing_arguments_rejected(self):
        with pytest.raises(ValueError):
            simulate_weighting(AcceleratorConfig(), 32, block_nonzeros=np.ones((4, 4)))

    def test_cycles_positive_and_bounded_below_by_ideal(self, features):
        config = AcceleratorConfig()
        phase, schedule = simulate_weighting(config, 128, features=features)
        ideal = schedule.total_nonzero_macs / config.total_macs
        assert phase.compute_cycles >= ideal
        assert phase.total_cycles > 0


class TestSimulateAggregation:
    @pytest.fixture(scope="class")
    def graph(self):
        from repro.graph import power_law_graph

        return power_law_graph(500, 2500, seed=31)

    def test_phase_and_cache_returned(self, graph):
        config = AcceleratorConfig()
        phase, cache = simulate_aggregation(graph, config, 128)
        assert phase.compute_cycles > 0
        assert cache.total_edges_processed == graph.num_edges // 2
        assert phase.dram_random_accesses == 0

    def test_gat_costs_more_than_gcn(self, graph):
        config = AcceleratorConfig()
        cache = run_cache_simulation(graph, config, 128)
        gcn_phase, _ = simulate_aggregation(graph, config, 128, is_gat=False, cache_result=cache)
        gat_phase, _ = simulate_aggregation(graph, config, 128, is_gat=True, cache_result=cache)
        assert gat_phase.compute_cycles > gcn_phase.compute_cycles
        assert gat_phase.sfu_operations > 0

    def test_baseline_policy_pays_random_access_penalty(self, graph):
        config = replace(AcceleratorConfig(), enable_degree_aware_caching=False)
        phase, cache = simulate_aggregation(graph, config, 128)
        assert cache.random_accesses > 0
        assert phase.dram_random_accesses > 0
        policy_phase, _ = simulate_aggregation(graph, AcceleratorConfig(), 128)
        assert phase.total_cycles > policy_phase.total_cycles

    def test_wider_features_cost_more(self, graph):
        config = AcceleratorConfig()
        cache = run_cache_simulation(graph, config, 128)
        narrow, _ = simulate_aggregation(graph, config, 32, cache_result=cache)
        wide, _ = simulate_aggregation(graph, config, 256, cache_result=cache)
        assert wide.compute_cycles > narrow.compute_cycles

    def test_output_stream_traffic_reported(self, graph):
        phase, _ = simulate_aggregation(graph, AcceleratorConfig(), 128)
        assert phase.dram_output_stream_bytes > 0
        assert phase.dram_input_stream_bytes > 0
