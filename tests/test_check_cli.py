"""The `repro check` CLI and `repro plan --check` surface.

`repro check` is the CI gate: exit 0 on a clean repo with an empty
baseline, exit 1 the moment a finding escapes the baseline or a lowered
plan stops verifying.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestCheckCommand:
    def test_clean_repo_exits_zero(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "repro check: ok" in out
        assert "25 family x dataset pair(s) verified" in out

    def test_json_report_shape(self, capsys):
        assert main(["check", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["lint"]["new"] == []
        assert len(report["plans"]) == 25
        assert all(row["ok"] for row in report["plans"])

    def test_lint_only_skips_plans(self, capsys):
        assert main(["check", "--lint", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["plans"] is None
        assert report["lint"] is not None

    def test_plans_only_skips_lint(self, capsys):
        assert main(["check", "--plans", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["lint"] is None
        assert len(report["plans"]) == 25

    def test_new_finding_fails_and_baseline_masks_it(self, tmp_path, capsys):
        offender = tmp_path / "offender.py"
        offender.write_text("key = id(graph)\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"

        argv = ["check", "--lint", "--paths", str(offender), "--baseline", str(baseline)]
        assert main(argv) == 1
        assert "D103" in capsys.readouterr().out

        assert main(argv + ["--update-baseline"]) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "(baselined)" in capsys.readouterr().out

    def test_update_baseline_writes_canonical_file(self, tmp_path):
        offender = tmp_path / "offender.py"
        offender.write_text("key = id(graph)\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        main(
            [
                "check",
                "--lint",
                "--paths",
                str(offender),
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        entries = json.loads(baseline.read_text(encoding="utf-8"))
        assert len(entries) == 1
        assert entries[0]["rule"] == "D103"


class TestPlanCheckFlag:
    def test_plan_check_passes_for_builtin_families(self, capsys):
        argv = ["plan", "--dataset", "cora", "--model", "gat", "--scale", "0.1", "--check"]
        assert main(argv) == 0
        assert "plan verified clean" in capsys.readouterr().err

    def test_plan_check_covers_chip_plans(self, capsys):
        argv = [
            "plan",
            "--dataset",
            "cora",
            "--model",
            "gcn",
            "--scale",
            "0.1",
            "--chips",
            "4",
            "--check",
        ]
        assert main(argv) == 0
        assert "+4 chip plans" in capsys.readouterr().err
