"""Tests for the closed-loop autotuner (`repro.tune`) and its reporting."""

from __future__ import annotations

import json
import random

import pytest

from repro.analysis import beta_rows, tune_report, tune_table_rows
from repro.cli import main
from repro.hw import AcceleratorConfig, design_preset
from repro.sim import admissible_mac_allocation
from repro.sim.design_space import DesignPoint
from repro.sweep import ResultStore
from repro.tune import (
    ParetoMutationProposer,
    TuneSpec,
    candidate_name,
    run_tune,
)


def _survivor(config: AcceleratorConfig, cycles: int = 100) -> DesignPoint:
    return DesignPoint(
        name=config.name,
        config=config,
        total_macs=config.total_macs,
        area_mm2=15.0,
        cycles=cycles,
        latency_seconds=cycles / config.frequency_hz,
        energy_joules=1e-6,
    )


@pytest.fixture(scope="module")
def spec() -> TuneSpec:
    return TuneSpec(
        dataset="cora", family="gcn", scale=0.1, seed=0, generations=3, population=4
    )


@pytest.fixture(scope="module")
def tuned(spec, tmp_path_factory):
    store_path = tmp_path_factory.mktemp("tune") / "store.jsonl"
    result = run_tune(spec, store=ResultStore(store_path))
    return result, store_path


class TestProposer:
    def test_candidates_admissible_and_content_named(self):
        proposer = ParetoMutationProposer(mac_budget=1280)
        survivors = [_survivor(design_preset("E"))]
        candidates = proposer.propose(survivors, rng=random.Random(0), count=32)
        assert candidates
        for config in candidates:
            assert admissible_mac_allocation(
                config.macs_per_group,
                group_sizes=config.rows_per_group,
                num_cols=config.num_cols,
                mac_budget=1280,
            )
            assert config != survivors[0].config
            assert config.name == candidate_name(config)
            if config.input_buffer_bytes is not None:
                assert config.input_buffer_bytes > 0

    def test_deterministic_under_one_seed(self):
        proposer = ParetoMutationProposer()
        survivors = [_survivor(design_preset("E")), _survivor(design_preset("A"))]
        first = proposer.propose(survivors, rng=random.Random("g1"), count=12)
        second = proposer.propose(survivors, rng=random.Random("g1"), count=12)
        assert first == second

    def test_empty_survivors_propose_nothing(self):
        assert ParetoMutationProposer().propose([], rng=random.Random(0), count=5) == []

    def test_candidate_name_is_a_pure_content_function(self):
        config = design_preset("E")
        assert candidate_name(config) == candidate_name(design_preset("E"))
        from dataclasses import replace

        assert candidate_name(config) != candidate_name(replace(config, gamma=7))
        hierarchy = replace(config, miss_path_mechanisms=("victim", "stream"))
        assert "MPvictim+stream" in candidate_name(hierarchy)


class TestRunTune:
    def test_generation_zero_is_baseline_plus_seeds(self, tuned):
        result, _ = tuned
        assert result.generations[0].cells == 2  # Design A + Design E

    def test_best_beta_at_least_the_paper_design_e(self, tuned, spec):
        """The tuner never loses the paper's hand-picked design point."""
        result, store_path = tuned
        betas = beta_rows(list(ResultStore(store_path).rows()), baseline=spec.baseline)
        design_e = next(e for e in betas if e["name"] == "Design E (GNNIE)")
        assert result.best is not None
        assert result.best["beta"] >= design_e["beta"]

    def test_every_generation_proposes_fresh_cells(self, tuned, spec):
        result, store_path = tuned
        # No cell is ever proposed twice: unique keys == evaluated count.
        assert len(ResultStore(store_path)) == result.evaluated_cells
        assert result.evaluated_cells <= 2 + (spec.generations - 1) * spec.population

    def test_resume_executes_zero_cells_and_matches(self, tuned, spec):
        result, store_path = tuned
        resumed = run_tune(spec, store=ResultStore(store_path))
        assert resumed.executed_cells == 0
        assert resumed.evaluated_cells == result.evaluated_cells
        assert resumed.best == result.best
        assert resumed.pareto == result.pareto
        assert [g.as_dict() for g in resumed.generations] == [
            {**g.as_dict(), "executed": 0, "resumed": g.cells} for g in result.generations
        ]

    def test_killed_run_resumes_without_resimulating_done_cells(self, tuned, spec, tmp_path):
        """Kill-and-resume: only the genuinely missing cells execute."""
        result, store_path = tuned
        partial = tmp_path / "partial.jsonl"
        lines = store_path.read_text().splitlines(keepends=True)
        partial.write_text("".join(lines[:3]))
        resumed = run_tune(spec, store=ResultStore(partial))
        assert resumed.executed_cells == result.evaluated_cells - 3
        assert resumed.best == result.best

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TuneSpec(dataset="cora", generations=0)
        with pytest.raises(ValueError):
            TuneSpec(dataset="cora", population=0)

    def test_spec_normalizes_axis_case(self):
        """A mixed-case spec must hash to the lowercase spec's cells, so
        shared stores and report filters agree."""
        spec = TuneSpec(dataset="Cora", family="GCN", backend="GNNIE")
        assert (spec.dataset, spec.family, spec.backend) == ("cora", "gcn", "gnnie")
        assert spec == TuneSpec(dataset="cora", family="gcn")

    def test_spec_rejects_config_insensitive_backends(self):
        """Baseline platforms ignore AcceleratorConfig — nothing to tune."""
        with pytest.raises(ValueError, match="gnnie"):
            TuneSpec(dataset="cora", backend="pyg-cpu")


class TestTuneReport:
    def test_report_over_the_finished_store(self, tuned, spec):
        result, store_path = tuned
        report = tune_report(
            store_path, dataset=spec.dataset, family=spec.family, baseline=spec.baseline
        )
        assert report["cells"] == result.evaluated_cells
        assert report["best"]["beta"] == pytest.approx(result.best["beta"])
        assert report["pareto"]
        # β ranking is best-first with null-β entries (the baseline) last.
        betas = [entry["beta"] for entry in report["beta"]]
        numeric = [beta for beta in betas if beta is not None]
        assert numeric == sorted(numeric, reverse=True)
        assert betas.index(None) == len(numeric) if None in betas else True
        # A GNNIE-only store has no baseline platforms to geomean.
        assert report["geomeans"] == {}

    def test_table_rows_match_report(self, tuned, spec):
        _, store_path = tuned
        report = tune_report(store_path, baseline=spec.baseline)
        rows = tune_table_rows(report, limit=3)
        assert len(rows) == min(3, len(report["beta"]))
        assert set(rows[0]) == {"design", "total_macs", "cycles", "area_mm2", "beta"}

    def test_unknown_baseline_raises_in_beta_rows(self, tuned):
        _, store_path = tuned
        with pytest.raises(ValueError, match="baseline"):
            beta_rows(list(ResultStore(store_path).rows()), baseline="Design Z")


class TestTuneCLI:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["tune"])
        assert args.dataset == "cora" and args.model == "gcn"
        assert args.generations == 4 and args.population == 6
        assert args.mac_budget == 1280 and args.store == "tune.jsonl"
        assert args.jobs == 1 and not args.no_resume

    def test_tune_command_then_resume(self, tmp_path, capsys):
        argv = [
            "tune",
            "--dataset", "cora",
            "--model", "gcn",
            "--scale", "0.1",
            "--generations", "2",
            "--population", "2",
            "--store", str(tmp_path / "cli.jsonl"),
            "--json",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["executed_cells"] == first["evaluated_cells"] > 0
        assert first["best"]["beta"] is not None
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["executed_cells"] == 0
        assert second["evaluated_cells"] == first["evaluated_cells"]
        assert second["best"] == first["best"]

    def test_tune_command_table_output(self, tmp_path, capsys):
        argv = [
            "tune",
            "--dataset", "cora",
            "--scale", "0.1",
            "--generations", "2",
            "--population", "2",
            "--store", str(tmp_path / "t.jsonl"),
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "Autotuned designs" in output
        assert "best design:" in output

    def test_tune_rejects_bad_arguments(self, tmp_path, capsys):
        store = str(tmp_path / "x.jsonl")
        assert main(["tune", "--jobs", "0", "--store", store]) == 2
        assert "--jobs" in capsys.readouterr().err
        assert main(["tune", "--generations", "0", "--store", store]) == 2
        assert "generations" in capsys.readouterr().err

    def test_tune_reports_old_format_store_cleanly(self, tmp_path, capsys):
        store = tmp_path / "old.jsonl"
        store.write_text('{"key":"a","config":{}}\n')
        argv = ["tune", "--dataset", "cora", "--scale", "0.1", "--store", str(store)]
        assert main(argv) == 2
        assert "format" in capsys.readouterr().err
