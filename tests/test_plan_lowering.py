"""Tests for the plan IR, the lowering registry and the executor registry."""

from __future__ import annotations

import json

import pytest

from repro.models import ModelConfig, MODEL_FAMILIES
from repro.plan import (
    AdjacencyRef,
    AggregationOp,
    AttentionOp,
    DenseMatmulOp,
    HIDDEN_DENSITY,
    InferencePlan,
    PlanLayer,
    PreprocessOp,
    SampleOp,
    WeightingOp,
    executor,
    executor_names,
    lower,
    lower_model,
    lowering_families,
    register_lowering,
)
from repro.sim import GNNIEExecutor, GNNIESimulator
from repro.sim.results import InferenceResult


class TestLoweringRegistry:
    def test_all_table3_families_registered(self):
        assert set(MODEL_FAMILIES) <= set(lowering_families())

    def test_unknown_family_raises(self, tiny_graph):
        with pytest.raises(KeyError):
            lower("transformer", tiny_graph)

    def test_custom_family_is_a_registry_entry(self, tiny_graph):
        @register_lowering("test-sgc")
        def lower_sgc(cfg, in_features, out_features):
            # SGC: one weighting, then k sum-aggregation hops.
            ops = (
                WeightingOp(in_features, out_features, is_input_layer=True),
                AggregationOp(in_features, out_features),
                AggregationOp(out_features, out_features),
            )
            return InferencePlan(
                family="test-sgc",
                in_features=in_features,
                out_features=out_features,
                layers=(PlanLayer(0, in_features, out_features, ops),),
            )

        plan = lower_model(ModelConfig(family="test-sgc"), 32, 4)
        assert plan.family == "test-sgc"
        # The new family executes on GNNIE without any engine change.
        result = GNNIEExecutor().execute(plan, tiny_graph)
        assert isinstance(result, InferenceResult)
        assert result.total_cycles > 0
        # Both propagation hops are costed, not just the last op of a kind.
        single_hop = InferencePlan(
            family="test-sgc",
            in_features=32,
            out_features=4,
            layers=(
                PlanLayer(
                    0,
                    32,
                    4,
                    (
                        WeightingOp(32, 4, is_input_layer=True),
                        AggregationOp(32, 4),
                    ),
                ),
            ),
        )
        one_hop = GNNIEExecutor().execute(single_hop, tiny_graph)
        two_hop_macs = result.layers[0].aggregation.mac_operations
        assert two_hop_macs > one_hop.layers[0].aggregation.mac_operations

    def test_workload_estimation_rejects_unknown_ops(self, tiny_graph):
        from dataclasses import dataclass

        from repro.baselines import workload_from_plan

        @dataclass(frozen=True)
        class MysteryOp:
            flops: int = 7

        plan = InferencePlan(
            family="mystery",
            in_features=8,
            out_features=2,
            layers=(PlanLayer(0, 8, 2, (MysteryOp(),)),),
        )
        with pytest.raises(TypeError):
            workload_from_plan(plan, tiny_graph)
        # The executor path is now gated by the plan verifier, which rejects
        # the unknown op (rule P001) before per-op dispatch would TypeError.
        from repro.check import PlanVerificationError

        with pytest.raises(PlanVerificationError, match="P001"):
            GNNIEExecutor().execute(plan, tiny_graph)


class TestPlanStructure:
    def test_gcn_plan_ops(self, tiny_graph):
        plan = lower("gcn", tiny_graph)
        assert plan.num_layers == 2
        for layer in plan.layers:
            assert isinstance(layer.find(WeightingOp), WeightingOp)
            assert isinstance(layer.find(AggregationOp), AggregationOp)
            assert layer.find(AttentionOp) is None
        assert plan.layers[0].find(WeightingOp).density is None
        assert plan.layers[1].find(WeightingOp).density == HIDDEN_DENSITY
        assert any(isinstance(op, PreprocessOp) for op in plan.global_ops)

    def test_gat_plan_has_attention_and_weighted_aggregation(self, tiny_graph):
        plan = lower("gat", tiny_graph)
        for layer in plan.layers:
            assert isinstance(layer.find(AttentionOp), AttentionOp)
            assert layer.find(AggregationOp).weighted

    def test_graphsage_plan_samples(self, tiny_graph):
        plan = lower("graphsage", tiny_graph)
        for layer in plan.layers:
            sample = layer.find(SampleOp)
            assert sample is not None and sample.sample_size == 25
            assert layer.find(AggregationOp).adjacency == AdjacencyRef("sampled", 25)

    def test_ginconv_aggregates_pre_weighting(self, tiny_graph):
        plan = lower("ginconv", tiny_graph)
        layer = plan.layers[0]
        aggregation = layer.find(AggregationOp)
        assert aggregation.pre_weighting
        assert aggregation.width == layer.in_features
        assert layer.find(WeightingOp).mlp_hidden == 128

    def test_diffpool_plan_coarsens(self, tiny_graph):
        plan = lower("diffpool", tiny_graph)
        assert plan.num_layers == 3
        coarsening = plan.layers[2].find(DenseMatmulOp)
        assert coarsening is not None
        clusters = max(2, 128 // 4)
        assert coarsening.macs_per_edge == clusters
        # Both constituent GCNs read the raw input features.
        assert all(layer.find(WeightingOp).is_input_layer for layer in plan.layers[:2])

    def test_plan_serialization_round_trips(self, tiny_graph):
        plan = lower("gat", tiny_graph)
        document = json.loads(plan.to_json())
        assert document["family"] == "gat"
        assert len(document["layers"]) == 2
        assert document["layers"][0]["ops"][1]["op"] == "AttentionOp"
        rows = plan.op_rows()
        assert any(row["op"] == "PreprocessOp" for row in rows)
        assert any("attention" in str(row["detail"]) for row in rows)


class TestLoweringEdgeCases:
    """Non-Table-III configurations must lower and execute unchanged."""

    def test_deep_gcn_num_layers_gt_2(self, tiny_graph):
        cfg = ModelConfig(family="gcn", num_layers=4, hidden_features=64)
        plan = lower_model(cfg, tiny_graph.feature_length, 6)
        assert plan.num_layers == 4
        dims = [(l.in_features, l.out_features) for l in plan.layers]
        assert dims == [(tiny_graph.feature_length, 64), (64, 64), (64, 64), (64, 6)]
        # Only the first layer reads the actual feature matrix.
        input_flags = [l.find(WeightingOp).is_input_layer for l in plan.layers]
        assert input_flags == [True, False, False, False]
        result = GNNIESimulator().run(tiny_graph, "gcn", model_cfg=cfg, out_features=6)
        assert len(result.layers) == 4
        assert result.total_cycles > 0

    def test_nonstandard_hidden_features(self, tiny_graph):
        cfg = ModelConfig(family="gat", hidden_features=48)
        plan = lower_model(cfg, tiny_graph.feature_length, 5)
        assert plan.layers[0].out_features == 48
        assert plan.layers[0].find(AttentionOp).out_features == 48
        result = GNNIESimulator().run(tiny_graph, "gat", model_cfg=cfg, out_features=5)
        assert result.layers[0].out_features == 48
        assert result.total_cycles > 0

    def test_graphsage_without_sample_size(self, tiny_graph):
        cfg = ModelConfig(family="graphsage", aggregator="max", sample_size=None)
        plan = lower_model(cfg, tiny_graph.feature_length, 4)
        # The Table III default of 25 neighbors applies.
        assert all(l.find(SampleOp).sample_size == 25 for l in plan.layers)
        result = GNNIESimulator().run(tiny_graph, "graphsage", model_cfg=cfg)
        assert result.total_cycles > 0

    def test_deep_ginconv_executes_on_baselines(self, tiny_graph):
        from repro.baselines import EnGNModel, workload_from_plan

        cfg = ModelConfig(family="ginconv", num_layers=3, mlp_hidden=32)
        plan = lower_model(cfg, tiny_graph.feature_length, 4)
        workload = workload_from_plan(plan, tiny_graph)
        assert len(workload.layers) == 3
        assert workload.dense_weighting_macs > 0
        result = EnGNModel().execute(plan, tiny_graph)
        assert result.latency_seconds > 0


class TestExecutorRegistry:
    def test_builtin_backends_registered(self):
        assert {"gnnie", "pyg-cpu", "pyg-gpu", "hygcn", "awb-gcn", "engn"} <= set(
            executor_names()
        )

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            executor("tpu")

    def test_gnnie_executor_resolves(self, tiny_graph):
        backend = executor("gnnie")
        result = backend.execute(lower("gcn", tiny_graph), tiny_graph)
        assert result.total_cycles > 0

    def test_baseline_backend_resolves(self, tiny_graph):
        backend = executor("hygcn")
        result = backend.execute(lower("gcn", tiny_graph), tiny_graph)
        assert result.platform == "HyGCN"
        assert result.latency_seconds > 0
