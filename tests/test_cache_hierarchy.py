"""Tests for the miss-path hierarchy (trace, mechanisms, composition)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import (
    EVICT,
    MISS,
    MECHANISM_REGISTRY,
    CachePolicyConfig,
    DegreeAwareCacheController,
    MissCache,
    MissPathConfig,
    MissPathHierarchy,
    MissPathMechanism,
    StreamBufferArray,
    TraceRecorder,
    VertexAccessTrace,
    VictimCache,
    build_mechanism,
    mechanism_names,
    simulate_lru_policy,
    simulate_vertex_order_baseline,
)
from repro.graph import power_law_graph
from repro.hw.config import AcceleratorConfig


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(600, 3000, exponent=2.1, seed=91)


def _trace(events, num_vertices=16, stream_order=None):
    recorder = TraceRecorder(num_vertices=num_vertices, stream_order=stream_order)
    for kind, vertex in events:
        recorder.miss(vertex) if kind == MISS else recorder.evict(vertex)
    return recorder.finish()


class TestTrace:
    def test_baseline_trace_matches_counters(self, graph):
        result = simulate_vertex_order_baseline(graph, 60, collect_trace=True)
        assert result.trace is not None
        assert result.trace.num_misses == result.random_accesses
        assert result.trace.num_evictions > 0
        assert result.trace.policy == "vertex_order"

    def test_trace_off_by_default(self, graph):
        assert simulate_vertex_order_baseline(graph, 60).trace is None
        assert simulate_lru_policy(graph, 60).trace is None

    def test_degree_aware_trace_has_no_misses(self, graph):
        controller = DegreeAwareCacheController(
            graph, CachePolicyConfig(capacity_vertices=60)
        )
        result = controller.run(collect_trace=True)
        assert result.trace is not None
        assert result.trace.num_misses == 0
        assert result.trace.num_evictions > 0

    def test_stream_positions_invert_stream_order(self):
        order = np.array([2, 0, 1], dtype=np.int64)
        trace = _trace([(MISS, 0)], num_vertices=3, stream_order=order)
        # vertex 2 is first in the stream, vertex 0 second, vertex 1 third.
        assert trace.stream_positions.tolist() == [1, 2, 0]

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            VertexAccessTrace(
                kinds=np.zeros(2, dtype=np.int8),
                vertices=np.zeros(3, dtype=np.int64),
                num_vertices=4,
                stream_positions=np.arange(4),
            )


class TestVictimCache:
    def test_hit_after_eviction(self):
        trace = _trace([(EVICT, 3), (MISS, 3)])
        assert VictimCache(entries=4).hit_mask(trace).tolist() == [True]

    def test_swap_back_removes_entry(self):
        # Second miss on the same vertex misses again: the record moved back
        # into the input buffer on the first hit.
        trace = _trace([(EVICT, 3), (MISS, 3), (MISS, 3)])
        assert VictimCache(entries=4).hit_mask(trace).tolist() == [True, False]

    def test_lru_capacity(self):
        trace = _trace([(EVICT, 1), (EVICT, 2), (EVICT, 3), (MISS, 1), (MISS, 3)])
        # Two entries: eviction of 3 displaces 1 (oldest), keeps {2, 3}.
        assert VictimCache(entries=2).hit_mask(trace).tolist() == [False, True]

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            VictimCache(entries=0)


class TestMissCache:
    def test_repeat_miss_hits(self):
        trace = _trace([(MISS, 5), (MISS, 5)])
        assert MissCache(entries=4).hit_mask(trace).tolist() == [False, True]

    def test_capacity_forgets_oldest_tag(self):
        trace = _trace([(MISS, 1), (MISS, 2), (MISS, 3), (MISS, 1)])
        # Two tags: by the time 1 re-misses, its tag was displaced by 2, 3.
        assert MissCache(entries=2).hit_mask(trace).tolist() == [
            False,
            False,
            False,
            False,
        ]

    def test_ignores_evictions(self):
        trace = _trace([(EVICT, 5), (MISS, 5)])
        assert MissCache(entries=4).hit_mask(trace).tolist() == [False]


class TestStreamBuffers:
    def test_sequential_run_hits(self):
        trace = _trace([(MISS, 4), (MISS, 5), (MISS, 6)])
        mask = StreamBufferArray(count=1, depth=4).hit_mask(trace)
        assert mask.tolist() == [False, True, True]

    def test_depth_bounds_window(self):
        trace = _trace([(MISS, 0), (MISS, 9)])
        assert StreamBufferArray(count=1, depth=4).hit_mask(trace).tolist() == [
            False,
            False,
        ]
        assert StreamBufferArray(count=1, depth=9).hit_mask(trace).tolist() == [
            False,
            True,
        ]

    def test_backward_jump_misses(self):
        trace = _trace([(MISS, 5), (MISS, 4)])
        assert StreamBufferArray(count=2, depth=8).hit_mask(trace).tolist() == [
            False,
            False,
        ]

    def test_multiple_buffers_track_interleaved_streams(self):
        # Two interleaved sequential streams; one buffer loses the first
        # stream every time the second allocates, two buffers keep both.
        events = [(MISS, 0), (MISS, 8), (MISS, 1), (MISS, 9), (MISS, 2), (MISS, 10)]
        trace = _trace(events)
        one = StreamBufferArray(count=1, depth=2).hit_mask(trace)
        two = StreamBufferArray(count=2, depth=2).hit_mask(trace)
        assert one.sum() < two.sum()
        assert two.tolist() == [False, False, True, True, True, True]

    def test_busy_stream_does_not_evict_idle_buffer(self):
        # Three consecutive hits on the first stream must not displace the
        # buffer tracking the second stream: hits slide their own buffer,
        # only misses allocate (LRU).
        events = [
            (MISS, 0),
            (MISS, 100),
            (MISS, 1),
            (MISS, 2),
            (MISS, 3),
            (MISS, 101),
        ]
        trace = _trace(events, num_vertices=128)
        mask = StreamBufferArray(count=2, depth=2).hit_mask(trace)
        assert mask.tolist() == [False, False, True, True, True, True]

    def test_uses_stream_layout_not_vertex_ids(self):
        # Vertices 7 then 3 look non-sequential by id, but the stream order
        # places them adjacently, so the second miss is a prefetch hit.
        order = np.array([7, 3, 0, 1, 2, 4, 5, 6], dtype=np.int64)
        trace = _trace([(MISS, 7), (MISS, 3)], num_vertices=8, stream_order=order)
        assert StreamBufferArray(count=1, depth=2).hit_mask(trace).tolist() == [
            False,
            True,
        ]


class TestRegistry:
    def test_known_mechanisms(self):
        assert set(mechanism_names()) == {"victim", "miss", "stream"}

    def test_plugin_mechanism_flows_through_accelerator_config(self):
        # repro.hw defers mechanism-name validation to the live registry, so
        # a runtime-registered mechanism is usable via AcceleratorConfig.
        from repro.cache.mechanisms import register_mechanism

        @register_mechanism("always-hit")
        class AlwaysHit(MissPathMechanism):
            def hit_mask(self, trace):
                return np.ones(trace.num_misses, dtype=bool)

        try:
            cfg = AcceleratorConfig(miss_path_mechanisms=("always-hit",))
            hierarchy = MissPathHierarchy.from_accelerator_config(cfg)
            trace = _trace([(MISS, 1), (MISS, 2)])
            assert hierarchy.filter(trace).resolved == 2
        finally:
            MECHANISM_REGISTRY.pop("always-hit", None)

    def test_build_mechanism(self):
        mechanism = build_mechanism("victim", entries=8)
        assert isinstance(mechanism, VictimCache)
        assert mechanism.entries == 8

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_mechanism("prefetcher-9000")
        with pytest.raises(ValueError):
            MissPathConfig(mechanisms=("prefetcher-9000",))
        # The accelerator config accepts any tuple (plug-ins may register
        # later); the error surfaces when the hierarchy is built from it.
        cfg = AcceleratorConfig(miss_path_mechanisms=("prefetcher-9000",))
        with pytest.raises(ValueError):
            MissPathHierarchy.from_accelerator_config(cfg)


class TestHierarchy:
    def test_combined_is_union_of_masks(self, graph):
        result = simulate_vertex_order_baseline(graph, 60, collect_trace=True)
        config = MissPathConfig(mechanisms=("victim", "miss", "stream"))
        hierarchy = MissPathHierarchy(config)
        outcome = hierarchy.filter(result.trace)
        masks = [
            build_mechanism(name, **config.mechanism_kwargs(name)).hit_mask(result.trace)
            for name in config.mechanisms
        ]
        union = np.zeros(result.trace.num_misses, dtype=bool)
        for mask in masks:
            union |= mask
        assert outcome.resolved == int(union.sum())
        assert outcome.dram_random_accesses == result.random_accesses - outcome.resolved
        by_name = {stats.name: stats for stats in outcome.mechanisms}
        for name, mask in zip(config.mechanisms, masks):
            assert by_name[name].hits == int(mask.sum())

    def test_rows_include_combined_entry(self, graph):
        result = simulate_vertex_order_baseline(graph, 60, collect_trace=True)
        outcome = MissPathHierarchy(
            MissPathConfig(mechanisms=("victim", "stream"))
        ).filter(result.trace)
        rows = outcome.rows()
        assert [row["mechanism"] for row in rows] == ["victim", "stream", "victim+stream"]

    def test_from_accelerator_config(self):
        cfg = AcceleratorConfig(
            miss_path_mechanisms=("stream",), stream_buffer_count=7, stream_buffer_depth=3
        )
        hierarchy = MissPathHierarchy.from_accelerator_config(cfg)
        [mechanism] = hierarchy.mechanisms
        assert isinstance(mechanism, StreamBufferArray)
        assert mechanism.count == 7 and mechanism.depth == 3

    def test_stream_hits_counted_as_prefetch_traffic(self, graph):
        result = simulate_vertex_order_baseline(graph, 60, collect_trace=True)
        stream_only = MissPathHierarchy(
            MissPathConfig(mechanisms=("stream",))
        ).filter(result.trace)
        # Every stream-buffer-resolved miss was served by a DRAM prefetch.
        assert stream_only.prefetch_resolved == stream_only.resolved
        assert stream_only.sequential_prefetch_bytes == (
            stream_only.resolved * result.trace.bytes_per_vertex
        )
        combined = MissPathHierarchy(
            MissPathConfig(mechanisms=("victim", "miss", "stream"))
        ).filter(result.trace)
        # On-chip hits (victim/miss cache) take priority over prefetches.
        assert combined.prefetch_resolved <= stream_only.resolved
        on_chip_only = MissPathHierarchy(
            MissPathConfig(mechanisms=("victim", "miss"))
        ).filter(result.trace)
        assert on_chip_only.prefetch_resolved == 0
        assert on_chip_only.prefetch_fill_records == 0

    def test_stream_fill_traffic_reported(self, graph):
        result = simulate_vertex_order_baseline(graph, 60, collect_trace=True)
        config = MissPathConfig(mechanisms=("stream",))
        outcome = MissPathHierarchy(config).filter(result.trace)
        [stats] = outcome.mechanisms
        allocations = stats.accesses - stats.hits
        # depth records per allocation, one slide-fetch per hit — the full
        # (mostly wasted) fill bandwidth that hit counts alone hide.
        assert outcome.prefetch_fill_records == (
            allocations * config.stream_depth + stats.hits
        )
        assert outcome.prefetch_fill_records > outcome.prefetch_resolved

    def test_total_dram_bytes_uses_net_random_traffic(self, graph):
        from repro.sim import run_cache_simulation

        plain_cfg = AcceleratorConfig(enable_degree_aware_caching=False)
        plain = run_cache_simulation(graph, plain_cfg, 64)
        filtered = run_cache_simulation(
            graph, plain_cfg.with_miss_path("victim", "miss", "stream"), 64
        )
        assert filtered.total_dram_accesses == (
            filtered.vertex_fetches + filtered.net_random_accesses
        )
        assert filtered.total_dram_accesses < plain.total_dram_accesses
        # Stream-buffer hits convert random bytes to sequential prefetch
        # bytes one-for-one; only on-chip (victim/miss-cache) hits remove
        # bytes outright.
        on_chip_hits = filtered.miss_path.resolved - filtered.miss_path.prefetch_resolved
        record_bytes = filtered.trace.bytes_per_vertex
        assert filtered.total_dram_bytes == (
            plain.total_dram_bytes - on_chip_hits * record_bytes
        )

    def test_empty_trace(self):
        trace = _trace([])
        outcome = MissPathHierarchy(
            MissPathConfig(mechanisms=("victim", "miss", "stream"))
        ).filter(trace)
        assert outcome.total_misses == 0
        assert outcome.resolved == 0
        assert outcome.hit_rate == 0.0


class TestSimulationIntegration:
    def test_run_cache_simulation_attaches_miss_path(self, graph):
        from repro.sim import run_cache_simulation

        cfg = AcceleratorConfig(
            enable_degree_aware_caching=False,
            miss_path_mechanisms=("victim", "miss", "stream"),
        )
        result = run_cache_simulation(graph, cfg, 64)
        assert result.miss_path is not None
        assert result.random_accesses_avoided > 0
        assert result.net_random_accesses == (
            result.random_accesses - result.random_accesses_avoided
        )

    def test_phase_charges_net_random_accesses(self, graph):
        from repro.sim import run_cache_simulation
        from repro.sim.aggregation_sim import aggregation_phase_from_cache

        plain_cfg = AcceleratorConfig(enable_degree_aware_caching=False)
        mp_cfg = plain_cfg.with_miss_path("victim", "miss", "stream")
        plain = run_cache_simulation(graph, plain_cfg, 64)
        filtered = run_cache_simulation(graph, mp_cfg, 64)
        phase_plain = aggregation_phase_from_cache(plain, graph, plain_cfg, 64)
        phase_filtered = aggregation_phase_from_cache(filtered, graph, mp_cfg, 64)
        avoided = filtered.random_accesses_avoided
        assert phase_filtered.dram_random_accesses_avoided == avoided
        assert (
            phase_filtered.dram_random_accesses
            == phase_plain.dram_random_accesses - avoided
        )
        # Stream-buffer hits keep their bytes (as sequential prefetch); only
        # on-chip hits remove bytes — but every avoided access skips the
        # random-access penalty, so stall cycles strictly improve.
        on_chip_hits = filtered.miss_path.resolved - filtered.miss_path.prefetch_resolved
        assert phase_filtered.dram_read_bytes == (
            phase_plain.dram_read_bytes - on_chip_hits * filtered.trace.bytes_per_vertex
        )
        assert phase_filtered.memory_stall_cycles < phase_plain.memory_stall_cycles

    def test_dram_model_accounts_avoided_accesses(self):
        from repro.hw.dram import HBMModel

        dram = HBMModel()
        dram.random_transfer_cycles(10)
        dram.note_avoided_random_accesses(4)
        assert dram.stats.random_accesses == 10
        assert dram.stats.random_accesses_avoided == 4
        assert dram.stats.random_accesses_issued == 14

    def test_engine_fingerprint_is_content_based(self, graph):
        from repro.sim.gnnie_executor import _adjacency_fingerprint

        same = _adjacency_fingerprint(graph)
        copy = power_law_graph(600, 3000, exponent=2.1, seed=91)
        other = power_law_graph(600, 3000, exponent=2.1, seed=92)
        assert _adjacency_fingerprint(copy) == same
        assert _adjacency_fingerprint(other) != same
