"""Tests for ``repro.obs``: tracer, metrics, exporters, schema, wiring.

The two contracts that matter most:

* **Disabled is free and invisible** — with the default ``NULL_TRACER`` /
  ``NULL_METRICS``, every instrumented path produces byte-identical results
  and the number of no-op span calls stays bounded (it scales with layers
  and ops, never with vertices or edges).
* **Enabled is consistent** — the per-span modeled-cycle attribution of one
  inference sums exactly to ``result.total_cycles``, and the Chrome-trace
  export always satisfies the trace-event invariants the schema validator
  checks (matched B/E pairs, monotonic timestamps).
"""

from __future__ import annotations

import json

import pytest

from repro.hw import AcceleratorConfig
from repro.sweep import ScenarioMatrix, run_cell_timed, run_sweep
from repro.sweep.store import ResultStore, canonical_row
from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    SpanRecord,
    Tracer,
    assert_valid_chrome_trace,
    chrome_trace_document,
    chrome_trace_events,
    flame_rows,
    metrics_to_csv,
    metrics_to_json,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim import GNNIESimulator
from repro.sim.trace import result_to_json


# ---------------------------------------------------------------------- #
# Tracer
# ---------------------------------------------------------------------- #
class TestTracer:
    def test_spans_nest_and_record_parents(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child", category="op") as child:
                pass
        records = {record.name: record for record in tracer.records}
        assert records["child"].parent_id == records["root"].span_id
        assert records["root"].parent_id is None
        assert records["child"].category == "op"
        # Inner spans complete (and are appended) first.
        assert [r.name for r in tracer.records] == ["child", "root"]
        del root, child

    def test_set_after_exit_attaches_final_attribution(self):
        tracer = Tracer()
        with tracer.span("op") as span:
            span.set(cycles=10)
        span.set(cycles=42, dram_bytes=7)  # post-hoc correction
        assert tracer.records[0].attrs == {"cycles": 42, "dram_bytes": 7}

    def test_timestamps_are_ordered(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s
        assert inner.duration_s >= 0

    def test_absorb_merges_dict_segments_from_other_processes(self):
        tracer = Tracer()
        foreign = SpanRecord(
            span_id=1, parent_id=None, name="cell", category="cell",
            start_s=1.0, end_s=2.0, pid=9999, attrs={"cycles": 5},
        )
        tracer.absorb([foreign.as_dict()])
        assert tracer.records[0] == foreign

    def test_record_roundtrips_through_dict(self):
        record = SpanRecord(
            span_id=3, parent_id=1, name="op", category="op",
            start_s=0.5, end_s=0.75, pid=42, attrs={"macs": 10},
        )
        assert SpanRecord.from_dict(record.as_dict()) == record


class TestNullTracer:
    def test_is_disabled_and_records_nothing(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", category="op", cycles=1) as span:
            span.set(cycles=99)
        assert list(NULL_TRACER.records) == []

    def test_span_returns_one_shared_object(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


# ---------------------------------------------------------------------- #
# Metrics
# ---------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_accumulates_and_labels_separate_instruments(self):
        registry = MetricsRegistry()
        registry.counter("hits", policy="lru").inc()
        registry.counter("hits", policy="lru").inc(2)
        registry.counter("hits", policy="fifo").inc(5)
        values = {
            (row["name"], tuple(sorted(row["labels"].items()))): row["value"]
            for row in registry.snapshot()
        }
        assert values[("hits", (("policy", "lru"),))] == 3
        assert values[("hits", (("policy", "fifo"),))] == 5

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("jobs").set(4)
        registry.gauge("jobs").set(2)
        (row,) = registry.snapshot()
        assert row["kind"] == "gauge" and row["value"] == 2

    def test_snapshot_is_sorted_and_merge_adds_counters(self):
        a = MetricsRegistry()
        a.counter("z").inc(1)
        a.counter("a").inc(1)
        assert [row["name"] for row in a.snapshot()] == ["a", "z"]
        b = MetricsRegistry()
        b.counter("z").inc(10)
        a.merge(b.snapshot())
        values = {row["name"]: row["value"] for row in a.snapshot()}
        assert values == {"a": 1, "z": 11}

    def test_null_registry_is_disabled_and_empty(self):
        NULL_METRICS.counter("x").inc()
        NULL_METRICS.gauge("y").set(3)
        assert NULL_METRICS.enabled is False
        assert NULL_METRICS.snapshot() == []

    def test_exports(self):
        registry = MetricsRegistry()
        registry.counter("hits", policy="lru").inc(3)
        document = json.loads(metrics_to_json(registry))
        assert document["metrics"][0]["value"] == 3
        csv_text = metrics_to_csv(registry)
        assert "hits,counter,policy=lru,3" in csv_text


# ---------------------------------------------------------------------- #
# Chrome-trace export + schema
# ---------------------------------------------------------------------- #
def _sample_spans():
    tracer = Tracer()
    with tracer.span("inference", category="inference"):
        with tracer.span("layer0", category="layer", layer=0):
            with tracer.span("op:weighting", category="op", layer=0, cycles=5):
                pass
        with tracer.span("layer1", category="layer", layer=1):
            pass
    return tracer.records


class TestChromeTraceExport:
    def test_events_validate_and_pair_up(self):
        document = chrome_trace_document(_sample_spans())
        assert_valid_chrome_trace(document)
        begins = [e for e in document["traceEvents"] if e["ph"] == "B"]
        ends = [e for e in document["traceEvents"] if e["ph"] == "E"]
        assert len(begins) == len(ends) == 4
        assert {e["name"] for e in begins} == {
            "inference", "layer0", "layer1", "op:weighting",
        }

    def test_layer_track_routes_spans_to_layer_tids(self):
        events = chrome_trace_events(_sample_spans(), track="layer")
        tid_of = {e["name"]: e["tid"] for e in events if e["ph"] == "B"}
        assert tid_of["inference"] == 0
        assert tid_of["layer0"] == 1 and tid_of["op:weighting"] == 1
        assert tid_of["layer1"] == 2
        thread_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"inference", "layer 0", "layer 1"} <= thread_names

    def test_empty_span_list_exports_cleanly(self):
        assert chrome_trace_events([]) == []
        assert_valid_chrome_trace(chrome_trace_document([]))

    def test_unknown_track_mode_rejected(self):
        with pytest.raises(ValueError, match="track"):
            chrome_trace_events(_sample_spans(), track="thread")

    def test_write_chrome_trace_produces_loadable_json(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "trace.json", _sample_spans(), metadata={"dataset": "CR"}
        )
        document = json.loads(path.read_text())
        assert document["metadata"]["dataset"] == "CR"
        assert document["displayTimeUnit"] == "ms"
        assert_valid_chrome_trace(document)

    def test_attrs_ride_in_event_args(self):
        events = chrome_trace_events(_sample_spans())
        (weighting,) = [
            e for e in events if e["ph"] == "B" and e["name"] == "op:weighting"
        ]
        assert weighting["args"]["cycles"] == 5


class TestSchemaValidator:
    def test_rejects_unmatched_end(self):
        document = {
            "traceEvents": [
                {"ph": "E", "name": "x", "pid": 0, "tid": 0, "ts": 1.0},
            ]
        }
        assert any("E" in problem for problem in validate_chrome_trace(document))
        with pytest.raises(AssertionError, match="matching B"):
            assert_valid_chrome_trace(document)

    def test_rejects_nonmonotonic_timestamps(self):
        document = {
            "traceEvents": [
                {"ph": "B", "name": "a", "pid": 0, "tid": 0, "ts": 5.0},
                {"ph": "E", "name": "a", "pid": 0, "tid": 0, "ts": 1.0},
            ]
        }
        assert validate_chrome_trace(document)

    def test_rejects_unclosed_begin(self):
        document = {
            "traceEvents": [
                {"ph": "B", "name": "a", "pid": 0, "tid": 0, "ts": 1.0},
            ]
        }
        assert any("never closed" in p for p in validate_chrome_trace(document))

    def test_rejects_missing_ph_and_non_dict_document(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": [{"name": "x"}]}) != []


class TestFlameRows:
    def test_aggregates_by_name_path(self):
        rows = flame_rows(_sample_spans())
        by_path = {row["span"]: row for row in rows}
        assert by_path["inference/layer0/op:weighting"]["cycles"] == 5
        assert by_path["inference/layer0/op:weighting"]["calls"] == 1
        assert set(by_path) == {
            "inference",
            "inference/layer0",
            "inference/layer0/op:weighting",
            "inference/layer1",
        }
        # Deepest modeled spender first.
        assert rows[0]["span"] == "inference/layer0/op:weighting"


# ---------------------------------------------------------------------- #
# Executor instrumentation: attribution + zero-cost disabled path
# ---------------------------------------------------------------------- #
class TestExecutorInstrumentation:
    @pytest.mark.parametrize("family", ["gcn", "gat", "graphsage", "diffpool"])
    def test_op_span_cycles_sum_to_total_cycles(self, small_cora, family):
        tracer = Tracer()
        result = GNNIESimulator(tracer=tracer).run(small_cora, family)
        op_cycles = sum(
            record.attrs.get("cycles", 0)
            for record in tracer.records
            if record.category == "op"
        )
        assert op_cycles == result.total_cycles

    def test_root_span_carries_whole_run_attribution(self, small_cora):
        tracer = Tracer()
        result = GNNIESimulator(tracer=tracer).run(small_cora, "gcn")
        (root,) = [r for r in tracer.records if r.category == "inference"]
        assert root.attrs["cycles"] == result.total_cycles
        assert root.attrs["mac_operations"] == result.total_mac_operations
        assert root.attrs["dram_bytes"] == result.total_dram_bytes
        assert root.attrs["energy_pj"] == pytest.approx(result.energy.total_pj)

    def test_layer_spans_cover_every_layer(self, small_cora):
        tracer = Tracer()
        result = GNNIESimulator(tracer=tracer).run(small_cora, "gcn")
        layers = [r for r in tracer.records if r.category == "layer"]
        assert sorted(r.attrs["layer"] for r in layers) == [
            layer.layer_index for layer in result.layers
        ]

    def test_traced_result_is_byte_identical_to_untraced(self, small_cora):
        baseline = GNNIESimulator().run(small_cora, "gcn")
        traced = GNNIESimulator(tracer=Tracer()).run(small_cora, "gcn")
        assert result_to_json(traced) == result_to_json(baseline)

    def test_default_tracer_is_the_shared_null_tracer(self):
        simulator = GNNIESimulator()
        assert simulator.tracer is NULL_TRACER
        assert simulator.metrics is NULL_METRICS

    def test_disabled_span_call_count_is_bounded(self, small_cora):
        """No-op span calls scale with layers/ops, never vertices/edges."""

        class CountingNullTracer(NullTracer):
            def __init__(self):
                self.calls = 0

            def span(self, name, category="span", **attrs):
                self.calls += 1
                return super().span(name, category, **attrs)

        counting = CountingNullTracer()
        result = GNNIESimulator(tracer=counting).run(small_cora, "gcn")
        # 1 inference + 1 preprocess + per layer: 1 layer span + <= 4 ops.
        assert counting.calls <= 2 + 5 * len(result.layers)

    def test_chrome_trace_of_real_inference_validates(self, small_cora, tmp_path):
        tracer = Tracer()
        GNNIESimulator(tracer=tracer).run(small_cora, "gat")
        for track in ("pid", "layer"):
            assert_valid_chrome_trace(chrome_trace_document(tracer.records, track=track))

    def test_cache_metrics_recorded_when_miss_path_enabled(self, small_cora):
        registry = MetricsRegistry()
        config = AcceleratorConfig(enable_degree_aware_caching=False).with_miss_path(
            "victim", "stream"
        )
        GNNIESimulator(config, metrics=registry).run(small_cora, "gcn")
        names = {row["name"] for row in registry.snapshot()}
        assert "cache.input_buffer.misses" in names
        assert "cache.miss_path.accesses" in names
        assert "executor.cache_sim.runs" in names
        mechanisms = {
            row["labels"].get("mechanism")
            for row in registry.snapshot()
            if row["name"] == "cache.miss_path.accesses"
        }
        assert {"victim", "stream"} <= mechanisms


# ---------------------------------------------------------------------- #
# Fleet (sweep/tune) instrumentation
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def obs_matrix() -> ScenarioMatrix:
    return ScenarioMatrix.build(
        ["cora"], ["gcn", "gat"], backends=["gnnie", "awb-gcn"], scale=0.1, seed=0
    )


class TestSweepObservability:
    def test_traced_rows_are_byte_identical_to_untraced(self, obs_matrix):
        plain = run_sweep(obs_matrix, jobs=1)
        traced = run_sweep(obs_matrix, jobs=1, tracer=Tracer(), metrics=MetricsRegistry())
        assert [canonical_row(r) for r in traced.rows] == [
            canonical_row(r) for r in plain.rows
        ]

    def test_sweep_trace_has_root_and_one_cell_span_per_executed(self, obs_matrix):
        tracer = Tracer()
        summary = run_sweep(obs_matrix, jobs=1, tracer=tracer)
        roots = [r for r in tracer.records if r.category == "sweep"]
        cells = [r for r in tracer.records if r.category == "cell"]
        assert len(roots) == 1
        assert roots[0].attrs["executed"] == summary.executed
        assert len(cells) == summary.executed
        # Supported GNNIE cells carry their modeled cycles on the cell span.
        assert any("cycles" in r.attrs for r in cells)
        assert_valid_chrome_trace(chrome_trace_document(tracer.records, track="pid"))

    def test_parallel_sweep_merges_worker_segments(self, obs_matrix):
        tracer = Tracer()
        summary = run_sweep(obs_matrix.cells()[:2], jobs=2, tracer=tracer)
        cells = [r for r in tracer.records if r.category == "cell"]
        assert len(cells) == summary.executed == 2
        # Worker spans keep their producing pid (their own timeline track).
        assert all(r.pid != 0 for r in cells)
        assert_valid_chrome_trace(chrome_trace_document(tracer.records, track="pid"))

    def test_metrics_count_executed_and_cached_cells(self, obs_matrix, tmp_path):
        store_path = tmp_path / "obs.jsonl"
        first = MetricsRegistry()
        run_sweep(obs_matrix, store=ResultStore(store_path), jobs=1, metrics=first)
        values = {row["name"]: row["value"] for row in first.snapshot()}
        assert values["sweep.cells.executed"] == 4
        assert values["sweep.cells.unsupported"] == 1  # AWB-GCN cannot run GAT
        assert values["sweep.jobs"] == 1
        assert values["sweep.cell_wall_seconds"] > 0
        second = MetricsRegistry()
        run_sweep(obs_matrix, store=ResultStore(store_path), jobs=1, metrics=second)
        resumed = {row["name"]: row["value"] for row in second.snapshot()}
        assert resumed["sweep.cells.cached"] == 4
        assert "sweep.cells.executed" not in resumed

    def test_summary_carries_wall_time_accounting(self, obs_matrix):
        summary = run_sweep(obs_matrix, jobs=1)
        assert summary.wall_seconds > 0
        assert summary.cell_wall_seconds > 0
        assert summary.rows_per_second > 0
        as_dict = summary.as_dict()
        assert as_dict["wall_seconds"] == summary.wall_seconds
        assert as_dict["cell_wall_seconds"] == summary.cell_wall_seconds

    def test_run_cell_timed_span_segment(self, obs_matrix):
        cell = obs_matrix.cells()[0]
        row, wall, spans = run_cell_timed(cell, trace=True)
        assert wall > 0
        roots = [s for s in spans if s["category"] == "cell"]
        assert len(roots) == 1
        assert roots[0]["attrs"]["key"] == cell.key() == row["key"]
        assert roots[0]["attrs"]["cycles"] == row["metrics"]["cycles"]
        untraced_row, _, no_spans = run_cell_timed(cell, trace=False)
        assert no_spans is None
        assert canonical_row(untraced_row) == canonical_row(row)


class TestTuneObservability:
    def test_tune_records_generation_spans_and_counters(self):
        from repro.tune import TuneSpec, run_tune

        tracer = Tracer()
        registry = MetricsRegistry()
        spec = TuneSpec(dataset="cora", scale=0.1, generations=2, population=2)
        result = run_tune(spec, tracer=tracer, metrics=registry)
        generations = [r for r in tracer.records if r.category == "tune"]
        assert [r.name for r in generations] == ["generation0", "generation1"]
        assert all("pareto_size" in r.attrs for r in generations)
        values = {row["name"]: row["value"] for row in registry.snapshot()}
        assert values["tune.generations"] == len(result.generations) == 2
        assert values["tune.proposals"] >= spec.population
        assert values["sweep.cells.executed"] == result.executed_cells
        assert "tune.pareto_size" in values
        assert_valid_chrome_trace(chrome_trace_document(tracer.records, track="pid"))
