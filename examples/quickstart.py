#!/usr/bin/env python3
"""Quickstart: simulate GNNIE inference on a citation graph.

This walks through the core public API in five steps:

1. build a synthetic stand-in for a benchmark dataset (Table II),
2. inspect the properties GNNIE is designed around (feature sparsity,
   power-law degrees),
3. run the functional GNN reference model to get actual outputs,
4. simulate the same inference on the GNNIE accelerator model,
5. compare against the PyG-CPU and PyG-GPU baseline cost models.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import compare_against_platform, format_table
from repro.baselines import PyGCPUModel, PyGGPUModel
from repro.datasets import build_dataset
from repro.hw import AcceleratorConfig
from repro.models import build_model
from repro.sim import GNNIESimulator


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Build a dataset.
    # ------------------------------------------------------------------ #
    graph = build_dataset("cora", seed=0)
    stats = graph.stats()
    print("Dataset:", stats.name)
    print(f"  vertices={stats.num_vertices}  edges={stats.num_edges}  "
          f"features={stats.feature_length}  labels={stats.num_labels}")

    # ------------------------------------------------------------------ #
    # 2. The two properties GNNIE exploits.
    # ------------------------------------------------------------------ #
    print(f"  input feature sparsity: {100 * stats.feature_sparsity:.2f}%")
    print(f"  adjacency sparsity:     {100 * stats.adjacency_sparsity:.4f}%")
    degrees = np.sort(graph.degrees())[::-1]
    hub_share = degrees[: len(degrees) // 10].sum() / degrees.sum()
    print(f"  top-10% vertices hold {100 * hub_share:.1f}% of all edges (power law)")

    # ------------------------------------------------------------------ #
    # 3. Functional reference model (what the accelerator must compute).
    # ------------------------------------------------------------------ #
    model = build_model("gcn", graph.feature_length, graph.num_label_classes, seed=0)
    logits = model.forward(graph.adjacency, graph.features)
    predictions = logits.argmax(axis=1)
    agreement = float(np.mean(predictions == graph.labels))
    print(f"\nFunctional 2-layer GCN produced logits of shape {logits.shape} "
          f"(untrained label agreement {agreement:.2f})")

    # ------------------------------------------------------------------ #
    # 4. Simulate the inference on GNNIE.
    # ------------------------------------------------------------------ #
    config = AcceleratorConfig()
    simulator = GNNIESimulator(config)
    print(f"\nGNNIE configuration: {config.num_rows}x{config.num_cols} CPEs, "
          f"{config.total_macs} MACs @ {config.frequency_hz / 1e9:.1f} GHz, "
          f"chip area ~{simulator.chip_area_mm2():.1f} mm^2")

    rows = []
    for family in ("gcn", "gat", "graphsage", "ginconv", "diffpool"):
        result = simulator.run(graph, family)
        rows.append(
            {
                "model": family.upper(),
                "cycles": result.total_cycles,
                "latency_us": round(result.latency_seconds * 1e6, 2),
                "effective_tops": round(result.effective_tops, 2),
                "energy_uJ": round(result.energy_joules * 1e6, 2),
                "inferences_per_kJ": result.inferences_per_kilojoule,
            }
        )
    print()
    print(format_table(rows, title="GNNIE inference on Cora (simulated)"))

    # ------------------------------------------------------------------ #
    # 5. Compare against the software baselines.
    # ------------------------------------------------------------------ #
    gcn_result = simulator.run(graph, "gcn")
    comparison = []
    for platform in (PyGCPUModel(), PyGGPUModel()):
        entry = compare_against_platform(gcn_result, graph, platform)
        comparison.append(
            {
                "baseline": entry.platform,
                "baseline_latency_ms": round(entry.baseline_latency_s * 1e3, 3),
                "gnnie_latency_us": round(entry.gnnie_latency_s * 1e6, 2),
                "speedup": round(entry.speedup, 1),
            }
        )
    print()
    print(format_table(comparison, title="GCN: GNNIE vs software baselines"))


if __name__ == "__main__":
    main()
