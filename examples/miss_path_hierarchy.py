#!/usr/bin/env python3
"""Miss-path hierarchy study: victim cache, miss cache and stream buffers.

GNNIE's degree-aware policy eliminates random DRAM traffic entirely; the
classic policies (and the vertex-id-order ablation baseline) do not.  This
example quantifies how much of that *remaining* random traffic three cheap
miss-path structures recover when placed behind the input buffer:

* a fully associative victim cache holding recently evicted vertex records,
* a tag-only miss cache catching short-term miss reuse,
* stream buffers prefetching the sequential DRAM vertex stream.

It then runs the full GNNIE cycle model with and without the hierarchy to
show the latency effect on the no-caching ablation, and verifies that the
degree-aware policy — which has no input-buffer misses — is left untouched.

Run with:  python examples/miss_path_hierarchy.py
"""

from __future__ import annotations

from repro.analysis import format_table, miss_path_ablation_rows
from repro.cache import MissPathConfig
from repro.datasets import build_dataset
from repro.hw import AcceleratorConfig
from repro.sim import GNNIESimulator, input_buffer_capacity


def main() -> None:
    graph = build_dataset("cora", seed=0)
    config = AcceleratorConfig().with_input_buffer_for(graph.name)
    feature_length = 128
    capacity, record_bytes = input_buffer_capacity(graph.adjacency, config, feature_length)
    print(
        f"Cora stand-in: {graph.num_vertices} vertices, "
        f"{graph.num_edges // 2} undirected edges; "
        f"input buffer holds {capacity} vertex records\n"
    )

    # ------------------------------------------------------------------ #
    # 1. Mechanism ablation on the vertex-order baseline's miss trace.
    # ------------------------------------------------------------------ #
    rows = miss_path_ablation_rows(
        graph.adjacency,
        capacity=capacity,
        bytes_per_vertex=record_bytes,
        policies=("vertex_order", "lru", "degree_aware"),
        mechanisms=("victim", "miss", "stream"),
        dataset=graph.name,
    )
    print(format_table(rows, title="Miss-path mechanisms per hit-path policy"))
    print(
        "\nThe degree-aware rows are all zero: GNNIE's policy issues no "
        "input-buffer misses, so there is nothing for the hierarchy to recover."
    )

    # ------------------------------------------------------------------ #
    # 2. Stream-buffer sizing sweep (count x depth).
    # ------------------------------------------------------------------ #
    sweep_rows = []
    for count in (1, 2, 4, 8):
        for depth in (4, 16, 64):
            sizing = MissPathConfig(stream_buffers=count, stream_depth=depth)
            [row] = miss_path_ablation_rows(
                graph.adjacency,
                capacity=capacity,
                bytes_per_vertex=record_bytes,
                policies=("vertex_order",),
                mechanisms=("stream",),
                miss_config=sizing,
            )
            sweep_rows.append(
                {
                    "buffers": count,
                    "depth": depth,
                    "hit_rate_pct": row["hit_rate_pct"],
                    "dram_random_avoided": row["dram_random_avoided"],
                }
            )
    print()
    print(format_table(sweep_rows, title="Stream-buffer sizing sweep (vertex-order baseline)"))

    # ------------------------------------------------------------------ #
    # 3. Whole-inference effect on the no-caching ablation.
    # ------------------------------------------------------------------ #
    ablation_cfg = config.without_optimizations()
    hierarchy_cfg = ablation_cfg.with_miss_path("victim", "miss", "stream")
    plain = GNNIESimulator(ablation_cfg).run(graph, "gcn")
    filtered = GNNIESimulator(hierarchy_cfg).run(graph, "gcn")
    gnnie = GNNIESimulator(config.with_miss_path("victim", "miss", "stream")).run(
        graph, "gcn"
    )

    def traffic(result):
        random = sum(p.dram_random_accesses for l in result.layers for p in l.phases())
        avoided = sum(
            p.dram_random_accesses_avoided for l in result.layers for p in l.phases()
        )
        return random, avoided

    report = []
    for label, result in (
        ("no caching", plain),
        ("no caching + VC/MC/SB", filtered),
        ("degree-aware + VC/MC/SB", gnnie),
    ):
        random, avoided = traffic(result)
        report.append(
            {
                "configuration": label,
                "dram_random_accesses": random,
                "random_avoided": avoided,
                "cycles": result.total_cycles,
                "latency_us": round(result.latency_seconds * 1e6, 2),
            }
        )
    print()
    print(format_table(report, title="GCN inference with and without the miss path"))
    print(
        "\nThe hierarchy claws back part of the baseline's random-access "
        "penalty, but degree-aware caching still wins: prevention beats recovery."
    )


if __name__ == "__main__":
    main()
