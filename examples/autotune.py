#!/usr/bin/env python3
"""Closed-loop autotuning: sweep → aggregate → propose, AWB-GCN style.

The paper picks GNNIE's flexible-MAC allocation and buffer sizes through an
open-loop design space exploration (Section VIII-A).  This example closes
that loop with ``repro.tune``: each generation sweeps a candidate
population through the fleet runner into a resumable result store,
aggregates the store into a latency/area Pareto front and β-vs-baseline
ranking, and mutates the survivors into the next generation — so the
search spends simulations only where the front is, instead of on a fixed
grid.

The run demonstrates:

* the tuner matching (seeding from) and trying to beat the paper's
  Design E β with a few dozen cells instead of a several-hundred-cell grid,
* resume semantics: a second, identically-specified run executes zero
  cells — every proposal is served from the store.

Run with:  python examples/autotune.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis import format_table, tune_report, tune_table_rows
from repro.sim import sweep_mac_allocations
from repro.sweep import ResultStore
from repro.tune import TuneSpec, run_tune


def main() -> None:
    store_path = Path(tempfile.mkdtemp()) / "tune.jsonl"
    spec = TuneSpec(
        dataset="cora",
        family="gcn",
        scale=0.5,
        seed=0,
        generations=4,
        population=6,
        mac_budget=1280,
    )

    # ------------------------------------------------------------------ #
    # 1. The closed loop: generations of sweep -> aggregate -> propose.
    # ------------------------------------------------------------------ #
    result = run_tune(spec, store=ResultStore(store_path), log=print)
    grid = len(sweep_mac_allocations(mac_budget=spec.mac_budget)) * 4 * 3
    print(
        f"\nevaluated {result.evaluated_cells} unique cells "
        f"(fixed grid would be {grid}); best design: "
        f"{result.best['name']} with β = {result.best['beta']:.4f}"
    )

    # ------------------------------------------------------------------ #
    # 2. Store-backed reporting: rebuild the ranking without re-running.
    # ------------------------------------------------------------------ #
    report = tune_report(store_path, dataset=spec.dataset, family=spec.family)
    print()
    print(format_table(tune_table_rows(report), title="Autotuned designs by β"))
    print()
    print(
        format_table(
            report["pareto"], title="Latency/area Pareto front among evaluated designs"
        )
    )

    # ------------------------------------------------------------------ #
    # 3. Resume: the identical spec re-proposes the identical generations,
    #    and the store serves every cell — nothing is re-simulated.
    # ------------------------------------------------------------------ #
    resumed = run_tune(spec, store=ResultStore(store_path))
    print(
        f"\nresumed run: {resumed.executed_cells} executed, "
        f"{resumed.evaluated_cells} served from {store_path}"
    )


if __name__ == "__main__":
    main()
