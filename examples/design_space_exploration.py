#!/usr/bin/env python3
"""Design-space exploration: MAC allocation, buffer sizing and β.

The paper selects the Flexible MAC allocation (4/5/6 MACs per CPE across the
row groups) "through design space exploration, optimizing the cost-to-benefit
ratio (speedup gain : hardware overhead)".  This example reproduces that
exploration on the Cora and Pubmed stand-ins:

* Designs A–E (uniform 4/5/6/7 MACs per CPE and the flexible allocation) are
  compared on Weighting cycles, area and the β metric of Fig. 17,
* the input-buffer capacity is swept to show its effect on Aggregation
  traffic (rounds and refetches).

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import design_beta_study, format_table
from repro.datasets import build_dataset
from repro.hw import AcceleratorConfig, AreaModel, design_preset
from repro.sim import GNNIESimulator, run_cache_simulation


def main() -> None:
    cora = build_dataset("cora", seed=0)
    pubmed = build_dataset("pubmed", seed=0)
    area_model = AreaModel()

    # ------------------------------------------------------------------ #
    # 1. Designs A-E: cycles, area, and speedup per added MAC.
    # ------------------------------------------------------------------ #
    rows = []
    reference = None
    for name in ("A", "B", "C", "D", "E"):
        config = design_preset(name)
        result = GNNIESimulator(config).run(cora, "gcn")
        if name == "A":
            reference = result
        rows.append(
            {
                "design": config.name,
                "total_macs": config.total_macs,
                "area_mm2": round(area_model.chip_area_mm2(config), 2),
                "gcn_cycles": result.total_cycles,
                "speedup_vs_A": round(reference.total_cycles / result.total_cycles, 3),
            }
        )
    print(format_table(rows, title="Designs A-E on Cora (GCN inference)"))

    beta_rows = []
    for dataset in (cora, pubmed):
        betas = design_beta_study(dataset)
        row = {"dataset": dataset.name}
        row.update({f"beta_{k}": round(v, 2) for k, v in betas.items()})
        beta_rows.append(row)
    print()
    print(format_table(beta_rows, title="β = Weighting-cycle reduction per added MAC (Fig. 17)"))
    print("Design E (flexible MACs, 1216 total) achieves the best speedup per added MAC.\n")

    # ------------------------------------------------------------------ #
    # 2. Input-buffer sweep: residency vs Aggregation DRAM traffic.
    # ------------------------------------------------------------------ #
    buffer_rows = []
    for kilobytes in (128, 256, 512, 1024, 2048):
        config = replace(AcceleratorConfig(), input_buffer_bytes=kilobytes * 1024)
        cache = run_cache_simulation(pubmed.adjacency, config, feature_length=128)
        buffer_rows.append(
            {
                "input_buffer_KB": kilobytes,
                "rounds": cache.num_rounds,
                "vertex_fetches": cache.vertex_fetches,
                "refetch_factor": round(cache.vertex_fetches / pubmed.num_vertices, 2),
                "dram_MB": round(cache.total_dram_bytes / 1e6, 2),
            }
        )
    print(format_table(buffer_rows, title="Input-buffer sweep on Pubmed (Aggregation)"))
    print("\nA larger input buffer keeps more of the graph resident, so fewer Rounds and "
          "less refetch traffic are needed — the paper's 512 KB choice balances area "
          "against traffic for graphs of Pubmed's size.")


if __name__ == "__main__":
    main()
