#!/usr/bin/env python3
"""Scenario sweep: the paper's evaluation matrix as one resumable fleet run.

Figs. 12–15 of the paper are a matrix of datasets × GNN families ×
platforms.  This example runs a slice of that matrix through the
``repro.sweep`` runner — every (dataset, family, backend) cell lands as one
JSONL row in a resumable result store — then aggregates the store into the
paper's headline numbers without re-running anything:

* per-backend geometric-mean speedups (Figs. 12–13),
* a latency/area Pareto front over design points A–E (Section VIII-E),
* a demonstration of resume semantics: the second run executes zero cells.

Run with:  python examples/scenario_sweep.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis import backend_geomeans, format_table, pareto_rows
from repro.hw import design_preset
from repro.sweep import ResultStore, ScenarioMatrix, run_sweep


def main() -> None:
    store_path = Path(tempfile.mkdtemp()) / "sweep.jsonl"

    # ------------------------------------------------------------------ #
    # 1. A dataset × family × backend slice of the evaluation matrix.
    # ------------------------------------------------------------------ #
    matrix = ScenarioMatrix.build(
        ["cora", "citeseer", "pubmed"],
        ["gcn", "gat", "graphsage"],
        backends=["gnnie", "pyg-cpu", "pyg-gpu", "hygcn", "awb-gcn", "engn"],
        scale=0.2,
        seed=0,
    )
    summary = run_sweep(matrix, store=ResultStore(store_path), jobs=2)
    print(
        f"matrix: {summary.total} cells, {summary.executed} executed, "
        f"{summary.unsupported} unsupported -> {summary.store_path}"
    )

    rows = [
        {"backend": backend, **{k: round(v, 2) for k, v in stats.items()}}
        for backend, stats in backend_geomeans(summary.rows).items()
    ]
    print()
    print(format_table(rows, title="GNNIE geomean speedup per backend (store-backed)"))

    # ------------------------------------------------------------------ #
    # 2. Resume: the same matrix again executes nothing.
    # ------------------------------------------------------------------ #
    resumed = run_sweep(matrix, store=ResultStore(store_path), jobs=2)
    print(
        f"\nresume: {resumed.skipped} of {resumed.total} cells served from the store, "
        f"{resumed.executed} executed"
    )

    # ------------------------------------------------------------------ #
    # 3. Design points A-E as sweep configurations + store-backed Pareto.
    # ------------------------------------------------------------------ #
    designs = ScenarioMatrix.build(
        ["cora"],
        ["gcn"],
        backends=["gnnie"],
        configs=[design_preset(name) for name in ("A", "B", "C", "D", "E")],
        scale=0.2,
        seed=0,
    )
    design_summary = run_sweep(designs, store=ResultStore(store_path), jobs=2)
    front = pareto_rows(design_summary.rows)
    print()
    print(
        format_table(
            [
                {
                    "design": point.name,
                    "total_macs": point.total_macs,
                    "area_mm2": round(point.area_mm2, 2),
                    "latency_us": round(point.latency_seconds * 1e6, 2),
                }
                for point in front
            ],
            title="Latency/area Pareto front over designs A-E (from the store)",
        )
    )
    print(
        "\nThe store now holds every cell of both sweeps; re-running this script "
        "against the same path would execute nothing at all."
    )


if __name__ == "__main__":
    main()
