#!/usr/bin/env python3
"""GAT attention study: GNNIE's linear-complexity attention reordering.

GATs are the most demanding GNN the paper targets — prior accelerators either
cannot run them (AWB-GCN) or skip the attention-normalization softmax
(HyGCN-style designs).  This example demonstrates the two pieces that make
GATs practical on GNNIE:

1. the **reordered attention computation** (Section V-A): per-vertex terms
   e_{i,1} = a1.T @ eta_w_i and e_{i,2} = a2.T @ eta_w_i are computed once and
   combined per edge, turning O(|V|*|E|) work into O(|V| + |E|) — verified
   here numerically against the naive formulation,
2. the **hardware cost** of the full GAT pipeline (Weighting, attention
   vector multiplication, edge-based softmax aggregation) versus a plain GCN
   on the same graph.

Run with:  python examples/gat_attention_study.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import format_table
from repro.datasets import build_dataset
from repro.hw import AcceleratorConfig
from repro.mapping import naive_attention_operations, schedule_attention
from repro.models import GATLayer, gat_attention_scores_naive, gat_attention_scores_reordered
from repro.sim import GNNIESimulator


def main() -> None:
    graph = build_dataset("citeseer", seed=0)
    config = AcceleratorConfig()
    feature_length = 128

    # ------------------------------------------------------------------ #
    # 1. Equivalence and complexity of the reordered attention computation.
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(0)
    layer = GATLayer(graph.feature_length, feature_length, seed=0)
    weighted = graph.features @ layer.weight
    edges = graph.adjacency.edge_array()

    start = time.perf_counter()
    reordered = gat_attention_scores_reordered(
        weighted, layer.attention_left, layer.attention_right, edges
    )
    reordered_seconds = time.perf_counter() - start

    sample = rng.choice(edges.shape[0], size=min(2000, edges.shape[0]), replace=False)
    start = time.perf_counter()
    naive_sample = gat_attention_scores_naive(
        weighted, layer.attention_left, layer.attention_right, edges[sample]
    )
    naive_seconds = (time.perf_counter() - start) * edges.shape[0] / sample.size

    max_error = float(np.max(np.abs(naive_sample - reordered[sample])))
    print("Attention score reordering (Section V-A)")
    print(f"  edges={edges.shape[0]}  max |naive - reordered| = {max_error:.2e}")
    print(f"  host time: reordered {reordered_seconds * 1e3:.1f} ms, "
          f"naive (extrapolated) {naive_seconds * 1e3:.1f} ms")

    schedule = schedule_attention(graph.num_vertices, feature_length, config)
    naive_ops = naive_attention_operations(graph.num_vertices, edges.shape[0], feature_length)
    print(f"  accelerator MACs: reordered {schedule.total_macs:,} vs naive {naive_ops:,} "
          f"({naive_ops / schedule.total_macs:.1f}x reduction)\n")

    # ------------------------------------------------------------------ #
    # 2. Full-pipeline cost of GAT vs GCN on GNNIE.
    # ------------------------------------------------------------------ #
    simulator = GNNIESimulator(config)
    rows = []
    for family in ("gcn", "gat"):
        result = simulator.run(graph, family)
        weighting = sum(layer.weighting.total_cycles for layer in result.layers)
        attention = sum(
            layer.attention.total_cycles for layer in result.layers if layer.attention
        )
        aggregation = sum(layer.aggregation.total_cycles for layer in result.layers)
        rows.append(
            {
                "model": family.upper(),
                "weighting_cycles": weighting,
                "attention_cycles": attention,
                "aggregation_cycles": aggregation,
                "total_cycles": result.total_cycles,
                "latency_us": round(result.latency_seconds * 1e6, 1),
                "energy_uJ": round(result.energy_joules * 1e6, 1),
            }
        )
    print(format_table(rows, title="GAT vs GCN on GNNIE (Citeseer)"))
    gat_row = next(row for row in rows if row["model"] == "GAT")
    gcn_row = next(row for row in rows if row["model"] == "GCN")
    overhead = gat_row["total_cycles"] / gcn_row["total_cycles"]
    print(f"\nGAT costs {overhead:.2f}x the cycles of GCN — the attention softmax is "
          "affordable because its compute-bound part is linear in |V| + |E|.")


if __name__ == "__main__":
    main()
