#!/usr/bin/env python3
"""Profile one GNNIE inference with the ``repro.obs`` observability layer.

The simulator is instrumented with a hierarchical span tracer
(``inference → layer → phase-op``) and a metrics registry, both disabled
no-ops by default (results stay byte-identical).  This example turns them
on for a single GAT inference on Cora and shows the three ways to look at
the result:

* a flame-style table: per-span modeled attribution (cycles, MACs, DRAM
  bytes, energy) next to host wall time — the modeled cycles of the
  phase-op spans sum exactly to ``result.total_cycles``;
* the metrics snapshot: cache-simulation and (when a miss path is
  configured) per-mechanism hit/miss counters;
* a Chrome trace-event JSON, one timeline track per GNN layer, loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

The same machinery scales to fleets: ``repro sweep --trace fleet.json
--jobs 4`` merges every worker's span segment onto one multi-process
timeline (one track per worker), and ``repro tune --trace`` adds one span
per tuner generation.

Run with:  python examples/profile_inference.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis import format_table
from repro.datasets import build_dataset
from repro.hw import AcceleratorConfig
from repro.obs import MetricsRegistry, Tracer, flame_rows, write_chrome_trace
from repro.sim import GNNIESimulator


def main() -> None:
    graph = build_dataset("cora", seed=0)
    # The vertex-order baseline policy pays random DRAM traffic, so the
    # victim/stream miss path actually sees accesses (the degree-aware
    # policy has nothing to catch on a graph this small).
    config = AcceleratorConfig(enable_degree_aware_caching=False).with_miss_path(
        "victim", "stream"
    )

    tracer = Tracer()
    metrics = MetricsRegistry()
    simulator = GNNIESimulator(config, tracer=tracer, metrics=metrics)
    result = simulator.run(graph, "gat")

    # ------------------------------------------------------------------ #
    # 1. Flame-style attribution table
    # ------------------------------------------------------------------ #
    rows = flame_rows(tracer.records)
    print(format_table(rows, title=f"GAT on {graph.name}: span attribution"))
    op_cycles = sum(
        record.attrs.get("cycles", 0)
        for record in tracer.records
        if record.category == "op"
    )
    print(f"\nphase-op modeled cycles {op_cycles} == total_cycles {result.total_cycles}")

    # ------------------------------------------------------------------ #
    # 2. Metrics registry (cache hierarchy counters)
    # ------------------------------------------------------------------ #
    print()
    print(
        format_table(
            [
                {
                    "metric": entry["name"],
                    "labels": ";".join(
                        f"{k}={v}" for k, v in sorted(entry["labels"].items())
                    )
                    or "-",
                    "value": entry["value"],
                }
                for entry in metrics.snapshot()
            ],
            title="Metrics",
        )
    )

    # ------------------------------------------------------------------ #
    # 3. Chrome trace for Perfetto / chrome://tracing
    # ------------------------------------------------------------------ #
    trace_path = Path(tempfile.mkdtemp()) / "gat_cora_trace.json"
    write_chrome_trace(
        trace_path,
        tracer.records,
        track="layer",
        metrics=metrics,
        metadata={"dataset": graph.name, "family": "gat"},
    )
    print(f"\nChrome trace written to {trace_path}")
    print("open https://ui.perfetto.dev and load it to browse the timeline")


if __name__ == "__main__":
    main()
