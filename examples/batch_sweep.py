#!/usr/bin/env python3
"""Batch execution: price a config batch in one pass, byte-identical to scalar.

The sweep runner groups pending cells by (dataset, scale, seed, family) and
dispatches each group as one *batch*: the graph, the lowered plan, the
baseline workload derivation, and one executor per backend are shared
across every config in the group, so the expensive graph-dependent work
(CSR fingerprints, neighbor sampling, cache-policy simulations) runs once
instead of once per cell.  This example shows the three layers of that
machinery:

* ``GNNIEExecutor.execute_batch`` — the config-axis batch API,
* ``run_sweep`` picking the batch path automatically (and the
  ``REPRO_NO_BATCH=1`` escape hatch forcing per-cell scalar execution),
* byte-identity: both paths serialize to exactly the same store rows.

Run with:  python examples/batch_sweep.py
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

from repro.datasets import build_dataset
from repro.hw import AcceleratorConfig
from repro.plan.lowering import lower
from repro.sim.batch import clear_pricing_contexts
from repro.sim.gnnie_executor import GNNIEExecutor
from repro.sweep import ScenarioMatrix, run_sweep
from repro.sweep.store import canonical_row


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. The executor-level batch API: one plan, many configs.
    # ------------------------------------------------------------------ #
    graph = build_dataset("cora", scale=0.25, seed=0)
    plan = lower("gcn", graph)
    base = AcceleratorConfig()
    configs = [base] + [
        replace(base, input_buffer_bytes=kb * 1024, name=f"buf{kb}k")
        for kb in (16, 32, 64)
    ]
    # MAC-allocation variants share the default cache configuration, so the
    # batch path prices them without a single extra cache simulation.
    configs += [
        replace(base, macs_per_group=macs, name=f"macs{'-'.join(map(str, macs))}")
        for macs in ((2, 4, 8), (4, 6, 8), (3, 5, 7))
    ]

    clear_pricing_contexts()
    start = time.perf_counter()
    results = GNNIEExecutor().execute_batch(plan, graph, configs)
    batch_s = time.perf_counter() - start
    for config, result in zip(configs, results):
        buf = config.input_buffer_bytes or 0
        print(
            f"{config.name or 'default':10s} buffer={buf // 1024 or 'auto':>4} KB  "
            f"latency={result.latency_seconds * 1e6:8.2f} us  "
            f"dram={result.total_dram_bytes:>10d} B"
        )

    # The cost every config paid before the batch layer: a fresh executor
    # pricing cold (cleared contexts), as in a new pool worker.
    start = time.perf_counter()
    for config in configs:
        clear_pricing_contexts()
        GNNIEExecutor().execute(plan, graph, config)
    scalar_s = time.perf_counter() - start
    print(
        f"\n{len(configs)} configs: batch {batch_s:.3f}s vs "
        f"cold-scalar {scalar_s:.3f}s ({scalar_s / batch_s:.1f}x)"
    )

    # ------------------------------------------------------------------ #
    # 2. The sweep runner batches automatically: one group per
    #    (dataset, family), configs as the batch axis.
    # ------------------------------------------------------------------ #
    matrix = ScenarioMatrix.build(
        ["cora", "citeseer"],
        ["gcn", "gat"],
        backends=["gnnie", "pyg-gpu"],
        scale=0.25,
        seed=0,
        configs=configs,
    )

    clear_pricing_contexts()
    batch = run_sweep(matrix, jobs=1)

    # The escape hatch: force the pre-batch scalar path — fresh executor,
    # fresh plan lowering and fresh baseline workload per cell.  Useful for
    # bisecting, and as the reference the byte-identity check compares
    # against.
    os.environ["REPRO_NO_BATCH"] = "1"
    clear_pricing_contexts()
    scalar = run_sweep(matrix, jobs=1)
    del os.environ["REPRO_NO_BATCH"]

    # ------------------------------------------------------------------ #
    # 3. Sharing never changes a row: both stores are byte-identical.
    # ------------------------------------------------------------------ #
    assert [canonical_row(r) for r in batch.rows] == [
        canonical_row(r) for r in scalar.rows
    ]
    print(f"{batch.total} sweep cells: batch and scalar rows byte-identical")


if __name__ == "__main__":
    main()
