#!/usr/bin/env python3
"""Cache policy ablation: degree-aware caching vs vertex-id-order processing.

Reproduces the behaviour behind Figs. 10, 11 and 18(left) of the paper on the
Pubmed stand-in:

* the degree-aware policy confines every random access to the on-chip buffer
  (zero random DRAM accesses), while id-order processing pays one random
  DRAM access for almost every non-resident neighbor,
* the per-Round α histograms flatten as the power-law tail is worked off,
* the eviction threshold γ trades buffer residency against refetch traffic.

Run with:  python examples/cache_policy_ablation.py
"""

from __future__ import annotations

from repro.analysis import alpha_round_histograms, format_table
from repro.cache import simulate_vertex_order_baseline, vertex_record_bytes
from repro.datasets import build_dataset
from repro.hw import AcceleratorConfig
from repro.sim import run_cache_simulation


def main() -> None:
    graph = build_dataset("pubmed", seed=0)
    config = AcceleratorConfig().with_input_buffer_for(graph.name)
    feature_length = 128
    record_bytes = vertex_record_bytes(feature_length, graph.adjacency.average_degree())
    capacity = config.input_buffer_bytes // record_bytes
    print(f"Pubmed stand-in: {graph.num_vertices} vertices, "
          f"{graph.num_edges // 2} undirected edges")
    print(f"Input buffer: {config.input_buffer_bytes // 1024} KB -> {capacity} resident vertices "
          f"({100 * capacity / graph.num_vertices:.1f}% of the graph)\n")

    # ------------------------------------------------------------------ #
    # 1. Degree-aware policy vs id-order baseline.
    # ------------------------------------------------------------------ #
    policy_result = run_cache_simulation(graph.adjacency, config, feature_length)
    baseline_result = simulate_vertex_order_baseline(
        graph.adjacency, capacity, bytes_per_vertex=record_bytes
    )
    rows = [
        {
            "policy": "degree-aware (GNNIE)",
            "rounds": policy_result.num_rounds,
            "vertex_fetches": policy_result.vertex_fetches,
            "random_dram_accesses": policy_result.random_accesses,
            "dram_MB": round(policy_result.total_dram_bytes / 1e6, 2),
        },
        {
            "policy": "vertex-id order (baseline)",
            "rounds": baseline_result.num_rounds,
            "vertex_fetches": baseline_result.vertex_fetches,
            "random_dram_accesses": baseline_result.random_accesses,
            "dram_MB": round(baseline_result.total_dram_bytes / 1e6, 2),
        },
    ]
    print(format_table(rows, title="Cache policy comparison (Aggregation traffic)"))

    # ------------------------------------------------------------------ #
    # 2. α histograms across Rounds (Fig. 10).
    # ------------------------------------------------------------------ #
    histograms = alpha_round_histograms(policy_result)
    alpha_rows = [
        {
            "round": hist.round_index,
            "unfinished_vertices": hist.unfinished_vertices,
            "max_alpha": hist.max_alpha,
            "peak_frequency": hist.peak_frequency,
        }
        for hist in histograms
    ]
    print()
    print(format_table(alpha_rows, title="α distribution per Round (initial row = degree distribution)"))

    # ------------------------------------------------------------------ #
    # 3. γ sweep (Fig. 11).
    # ------------------------------------------------------------------ #
    gamma_rows = []
    for gamma in (2, 5, 10, 25):
        sweep = run_cache_simulation(graph.adjacency, config, feature_length, gamma=gamma)
        gamma_rows.append(
            {
                "gamma": gamma,
                "dram_accesses": sweep.total_dram_accesses,
                "rounds": sweep.num_rounds,
                "deadlock_events": sweep.deadlock_events,
            }
        )
    print()
    print(format_table(gamma_rows, title="Eviction threshold γ sweep"))
    print("\nLarger γ evicts vertices that still have unprocessed edges, so they are "
          "refetched in later Rounds; γ too small risks deadlock (resolved dynamically).")


if __name__ == "__main__":
    main()
